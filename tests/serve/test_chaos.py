"""Chaos suite for the analysis service: faults injected mid-request.

The ISSUE 5 acceptance contract: a fault firing *inside* a live
request produces a typed error response (never a dead worker or a hung
future), the service keeps answering, and a retry after the fault
clears converges to the same ``result_digest`` as batch
:func:`repro.analyze` — the planner must not have committed the dirty
set on the failed run.
"""

import pytest

from repro import CosmicDanceConfig, analyze
from repro.core import pipeline as pipeline_module
from repro.exec import result_digest
from repro.robustness import RetryPolicy
from repro.robustness.faults import FaultPlan, FaultyStore, InjectedOSError
from repro.serve.service import AnalysisService

from tests.serve.conftest import ingest

pytestmark = pytest.mark.chaos


def poison_assess(monkeypatch, *, armed, catalog_number=None):
    """Monkeypatch the pipeline's ``assess_decay`` seam (the same one
    the robustness suite uses) to raise while ``armed["on"]`` holds."""

    def poisoned(history, config):
        hit = catalog_number is None or history.catalog_number == catalog_number
        if armed["on"] and hit:
            raise ZeroDivisionError("injected stage fault")
        from repro.core.decay import assess_decay

        return assess_decay(history, config)

    monkeypatch.setattr(pipeline_module, "assess_decay", poisoned)


class TestStageFaultMidRequest:
    def test_strict_refresh_fails_typed_then_recovers(
        self, monkeypatch, dst_text, tle_text
    ):
        armed = {"on": True}
        poison_assess(monkeypatch, armed=armed)
        config = CosmicDanceConfig(strict=True)
        with AnalysisService(config=config) as svc:
            ingest(svc, dst_text, tle_text)
            failed = svc.call(svc.request("refresh"))
            assert not failed.ok
            assert failed.error_type == "ZeroDivisionError"
            assert "injected stage fault" in failed.error["message"]
            # The worker survived the mid-request explosion.
            assert svc.call(svc.request("health")).ok
            # The planner never committed, so the dirty set is intact
            # and the retry recomputes everything the fault poisoned.
            armed["on"] = False
            retried = svc.call(svc.request("refresh"))
            assert retried.ok, retried.error
            batch = result_digest(analyze(dst_text, tle_text, config=config))
            assert retried.result["result_digest"] == batch

    def test_default_mode_quarantines_and_keeps_serving(
        self, monkeypatch, service, dst_text, tle_text
    ):
        poison_assess(monkeypatch, armed={"on": True}, catalog_number=2)
        ingest(service, dst_text, tle_text)
        response = service.call(service.request("refresh"))
        assert response.ok, response.error
        assert response.result["health"].startswith("degraded: 1 satellite(s)")
        # Queries on the degraded session still answer.
        episodes = service.call(
            service.request("query-episodes", source="analysis")
        )
        assert episodes.ok


class TestStoreFaultsMidRequest:
    def test_transient_store_faults_are_absorbed(
        self, tmp_path, dst_text, tle_text
    ):
        # Every path flaky: the memo's journal writes all fail twice
        # before succeeding, mid-refresh, under the broker worker.
        plan = FaultPlan(
            seed=7, transient_error_rate=1.0, transient_failures=2
        )
        store = FaultyStore(
            tmp_path,
            plan,
            retry=RetryPolicy(max_attempts=4, sleep=lambda s: None),
        )
        with AnalysisService(store=store) as svc:
            ingest(svc, dst_text, tle_text)
            response = svc.call(svc.request("refresh"))
            assert response.ok, response.error
            assert response.result["result_digest"] == result_digest(
                analyze(dst_text, tle_text)
            )
        # The plan really fired: fault budgets were allotted and drained.
        assert store._budgets and all(v == 0 for v in store._budgets.values())

    def test_unretried_store_fault_is_a_typed_response(
        self, tmp_path, dst_text, tle_text
    ):
        # No retry policy: the injected OSError surfaces as the
        # request's error envelope, and the service keeps answering.
        plan = FaultPlan(
            seed=7, transient_error_rate=1.0, transient_failures=2
        )
        with AnalysisService(store=FaultyStore(tmp_path, plan)) as svc:
            ingest(svc, dst_text, tle_text)
            failed = svc.call(svc.request("refresh"))
            if failed.ok:  # pragma: no cover - depends on store policy
                pytest.skip("store absorbed the fault without a retry policy")
            assert failed.error_type == InjectedOSError.__name__
            assert svc.call(svc.request("health")).ok
