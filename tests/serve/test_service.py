"""AnalysisService tests: ops, parity, coalescing, isolation, lifecycle.

The two acceptance anchors live here:

* a warm ``refresh`` through the service returns a ``result_digest``
  byte-identical to :func:`repro.analyze` over the same data;
* N concurrent refreshes of the same dirty set trigger exactly one
  recompute (the session's ``refreshes`` counter), all N waiters
  receiving that one result.
"""

import threading

import pytest

from repro import analyze
from repro.exec import result_digest
from repro.serve.service import AnalysisService

from tests.serve.conftest import ingest, small_dataset


class TestLifecycle:
    def test_context_manager_starts_and_drains(self, dst_text, tle_text):
        with AnalysisService() as svc:
            response = svc.call(svc.request("health"))
            assert response.ok
            assert response.result["status"] == "ok"
        assert not svc.broker.accepting

    def test_rejection_after_shutdown_is_a_protocol_answer(self):
        svc = AnalysisService()
        svc.start()
        svc.shutdown()
        response = svc.call(svc.request("health"))
        assert not response.ok
        assert response.error_type == "ServeError"

    def test_unknown_payload_is_answered_not_raised(self, service):
        response = service.call(service.request("refresh", junk=1))
        assert not response.ok
        assert response.error_type == "ProtocolError"

    def test_service_keeps_answering_after_a_failed_request(self, service):
        # refresh before any ingest is a handler failure...
        failed = service.call(service.request("refresh"))
        assert not failed.ok
        assert failed.error_type == "IngestError"
        # ...and the next request on the same worker still answers.
        assert service.call(service.request("health")).ok


class TestIngestAndRefresh:
    def test_ingest_reports_chunks_and_watermarks(self, service, dst_text, tle_text):
        response = ingest(service, dst_text, tle_text)
        result = response.result
        assert [c["kind"] for c in result["chunks"]] == ["dst", "tle"]
        assert all(not c["duplicate"] for c in result["chunks"])
        assert result["ready"] is True
        assert result["version"] == 1
        assert result["watermarks"]["chunks"] == 2

    def test_duplicate_ingest_does_not_bump_version(
        self, service, dst_text, tle_text
    ):
        first = ingest(service, dst_text, tle_text)
        again = ingest(service, dst_text, tle_text)
        assert all(c["duplicate"] for c in again.result["chunks"])
        assert again.result["version"] == first.result["version"] == 1

    def test_refresh_digest_matches_batch_analyze(
        self, service, dst_text, tle_text
    ):
        ingest(service, dst_text, tle_text)
        response = service.call(service.request("refresh"))
        assert response.ok, response.error
        batch = result_digest(analyze(dst_text, tle_text))
        assert response.result["result_digest"] == batch

    def test_refresh_before_ready_is_typed(self, service, dst_text):
        response = service.call(
            service.request("ingest-delta", dst_text=dst_text)
        )
        assert response.ok and not response.result["ready"]
        refresh = service.call(service.request("refresh"))
        assert not refresh.ok
        assert refresh.error_type == "IngestError"

    def test_second_refresh_is_a_warm_noop_plan(self, service, dst_text, tle_text):
        ingest(service, dst_text, tle_text)
        first = service.call(service.request("refresh"))
        second = service.call(service.request("refresh"))
        assert second.ok
        assert second.result["result_digest"] == first.result["result_digest"]
        assert second.result["plan"]["dirty"] == 0

    def test_delta_ingest_dirties_only_the_touched_satellite(
        self, service, dst_text, tle_text
    ):
        from repro.tle.format import format_tle_block

        from tests.core.helpers import record

        ingest(service, dst_text, tle_text)
        first = service.call(service.request("refresh"))
        assert first.ok
        delta = format_tle_block([record(1, 30.5, 549.0)])
        response = service.call(
            service.request("ingest-delta", tle_text=delta)
        )
        assert response.ok
        assert response.result["version"] == 2
        second = service.call(service.request("refresh"))
        assert second.ok
        assert second.result["plan"] == {
            "dirty": 1, "clean": 2, "storms_dirty": False,
        }


class TestCoalescing:
    N = 8

    def test_concurrent_refreshes_trigger_exactly_one_recompute(
        self, service, dst_text, tle_text
    ):
        ingest(service, dst_text, tle_text)
        futures = [
            service.submit(service.request("refresh", request_id=f"r{i}"))
            for i in range(self.N)
        ]
        responses = [f.result(timeout=60) for f in futures]
        assert all(r.ok for r in responses), [r.error for r in responses]
        digests = {r.result["result_digest"] for r in responses}
        assert len(digests) == 1
        # Exactly one analysis ran; the other N-1 waited on it.
        session = service.sessions.peek("default")
        assert session.refreshes == 1
        assert {r.request_id for r in responses} == {
            f"r{i}" for i in range(self.N)
        }

    def test_coalesced_count_is_metered(self, service, dst_text, tle_text):
        ingest(service, dst_text, tle_text)
        futures = [
            service.submit(service.request("refresh")) for _ in range(self.N)
        ]
        for future in futures:
            assert future.result(timeout=60).ok
        health = service.call(service.request("health")).result
        assert health["refreshes"] == 1.0
        assert health["coalesced"] == float(self.N - 1)

    def test_version_bump_starts_a_new_coalesce_generation(
        self, service, dst_text, tle_text
    ):
        ingest(service, dst_text, tle_text)
        assert service.call(service.request("refresh")).ok
        from repro.tle.format import format_tle_block

        from tests.core.helpers import record

        service.call(
            service.request(
                "ingest-delta",
                tle_text=format_tle_block([record(2, 30.5, 549.0)]),
            )
        )
        second = service.call(service.request("refresh"))
        assert second.ok
        assert service.sessions.peek("default").refreshes == 2


class TestSessions:
    def test_sessions_are_isolated(self, service, dst_text, tle_text):
        ingest(service, dst_text, tle_text, session="alpha")
        health = service.call(service.request("health", session="beta")).result
        assert health["session"]["ready"] is False
        assert set(health["sessions"]) == {"alpha", "beta"}

    def test_shared_memo_warms_a_second_session(
        self, service, dst_text, tle_text
    ):
        ingest(service, dst_text, tle_text, session="alpha")
        assert service.call(service.request("refresh", session="alpha")).ok
        ingest(service, dst_text, tle_text, session="beta")
        response = service.call(service.request("refresh", session="beta"))
        assert response.ok
        # Same records, same config: beta's fleet is entirely memo hits.
        assert response.result["plan"]["dirty"] == 0
        assert response.result["plan"]["clean"] == 3


class TestQueries:
    @pytest.fixture(autouse=True)
    def _warm(self, service, dst_text, tle_text):
        ingest(service, dst_text, tle_text)

    def test_online_episodes_without_any_refresh(self, service):
        response = service.call(service.request("query-episodes"))
        assert response.ok
        assert response.result["source"] == "online"
        assert len(response.result["episodes"]) == 1
        assert response.result["episodes"][0]["level"] == "MODERATE"

    def test_analysis_episodes_require_a_refresh(self, service):
        early = service.call(
            service.request("query-episodes", source="analysis")
        )
        assert not early.ok
        assert early.error_type == "SessionError"
        assert service.call(service.request("refresh")).ok
        late = service.call(service.request("query-episodes", source="analysis"))
        assert late.ok

    def test_bad_episode_source_rejected(self, service):
        response = service.call(
            service.request("query-episodes", source="psychic")
        )
        assert response.error_type == "ProtocolError"

    def test_query_alerts_filters_and_limits(self, service):
        assert service.call(service.request("refresh")).ok
        everything = service.call(service.request("query-alerts")).result
        assert everything["total"] >= 2
        storms = service.call(
            service.request("query-alerts", kind="storm")
        ).result
        assert all(a["kind"].startswith("storm") for a in storms["alerts"])
        one = service.call(service.request("query-alerts", limit=1)).result
        assert len(one["alerts"]) == 1
        assert one["total"] == everything["total"]

    def test_trace_report_renders_service_metrics(self, service):
        response = service.call(service.request("trace-report"))
        assert response.ok
        assert response.result["traced"] is False
        names = {m["name"] for m in response.result["metrics"]}
        assert "serve.requests" in names

    def test_health_snapshot(self, service):
        health = service.call(service.request("health")).result
        assert health["status"] == "ok"
        assert health["queue_limit"] == 64
        assert health["session"]["id"] == "default"
        assert health["session"]["ready"] is True


class TestOverload:
    def test_queue_full_is_an_overloaded_response(self, dst_text, tle_text):
        svc = AnalysisService(queue_limit=1, workers=1)
        svc.start()
        try:
            gate = threading.Event()
            entered = threading.Event()

            def blocker():
                entered.set()
                gate.wait(5)

            # Jam the single worker so the queue backs up.
            svc.broker.submit(blocker)
            assert entered.wait(5)
            responses = [
                svc.submit(svc.request("health")) for _ in range(3)
            ]
            gate.set()
            outcomes = [f.result(timeout=10) for f in responses]
            assert any(
                r.error_type == "OverloadedError" for r in outcomes if not r.ok
            )
            assert any(r.ok for r in outcomes)
        finally:
            svc.shutdown()
