"""Request-broker unit tests: queueing, coalescing, backpressure, drain."""

import threading

import pytest

from repro.errors import OverloadedError, ServeError
from repro.obs.metrics import MetricsRegistry
from repro.serve.broker import RequestBroker


def started(**kwargs) -> RequestBroker:
    broker = RequestBroker(**kwargs)
    broker.start()
    return broker


def counter_value(metrics: MetricsRegistry, name: str) -> float:
    for sample in metrics.snapshot():
        if sample.name == name:
            return sample.value
    return 0.0


class TestExecution:
    def test_submit_runs_and_resolves(self):
        broker = started()
        try:
            future, coalesced = broker.submit(lambda: 41 + 1)
            assert not coalesced
            assert future.result(timeout=5) == 42
        finally:
            broker.shutdown()

    def test_thunk_exception_lands_on_the_future(self):
        broker = started()
        try:
            future, _ = broker.submit(lambda: 1 / 0)
            with pytest.raises(ZeroDivisionError):
                future.result(timeout=5)
        finally:
            broker.shutdown()

    def test_worker_survives_a_failing_thunk(self):
        broker = started(workers=1)
        try:
            bad, _ = broker.submit(lambda: 1 / 0)
            good, _ = broker.submit(lambda: "still alive")
            with pytest.raises(ZeroDivisionError):
                bad.result(timeout=5)
            assert good.result(timeout=5) == "still alive"
        finally:
            broker.shutdown()

    def test_limits_validated(self):
        with pytest.raises(ServeError):
            RequestBroker(queue_limit=0)
        with pytest.raises(ServeError):
            RequestBroker(workers=0)


class TestCoalescing:
    def test_same_key_shares_one_future(self):
        gate = threading.Event()
        runs = []

        def slow():
            gate.wait(5)
            runs.append(1)
            return "computed"

        broker = started(workers=1)
        try:
            first, c1 = broker.submit(slow, coalesce=("refresh", "s", 0))
            second, c2 = broker.submit(
                lambda: runs.append(2), coalesce=("refresh", "s", 0)
            )
            assert (c1, c2) == (False, True)
            assert second is first
            gate.set()
            assert first.result(timeout=5) == "computed"
            broker.drain()
            assert runs == [1]  # the absorbed thunk never ran
        finally:
            broker.shutdown()

    def test_different_keys_do_not_coalesce(self):
        broker = started()
        try:
            a, _ = broker.submit(lambda: "a", coalesce=("refresh", "s", 0))
            b, coalesced = broker.submit(lambda: "b", coalesce=("refresh", "s", 1))
            assert not coalesced
            assert a is not b
            assert {a.result(5), b.result(5)} == {"a", "b"}
        finally:
            broker.shutdown()

    def test_completed_key_recomputes(self):
        broker = started()
        try:
            first, _ = broker.submit(lambda: 1, coalesce="k")
            assert first.result(timeout=5) == 1
            broker.drain()
            second, coalesced = broker.submit(lambda: 2, coalesce="k")
            assert not coalesced
            assert second.result(timeout=5) == 2
        finally:
            broker.shutdown()

    def test_coalesce_metrics_counted(self):
        metrics = MetricsRegistry()
        gate = threading.Event()
        broker = started(workers=1, metrics=metrics)
        try:
            broker.submit(lambda: gate.wait(5), coalesce="k")
            broker.submit(lambda: None, coalesce="k")
            broker.submit(lambda: None, coalesce="k")
            gate.set()
            broker.drain()
            assert counter_value(metrics, "serve.coalesced") == 2.0
        finally:
            broker.shutdown()


class TestBackpressure:
    def test_full_queue_rejects_immediately(self):
        gate = threading.Event()
        metrics = MetricsRegistry()
        broker = started(queue_limit=1, workers=1, metrics=metrics)
        try:
            blocker, _ = broker.submit(lambda: gate.wait(5))
            # The worker may or may not have dequeued the blocker yet;
            # fill whatever queue capacity remains, then overflow it.
            pending = []
            with pytest.raises(OverloadedError):
                for _ in range(3):
                    pending.append(broker.submit(lambda: None)[0])
            assert counter_value(metrics, "serve.rejected") == 1.0
            gate.set()
            assert blocker.result(timeout=5)
        finally:
            broker.shutdown()

    def test_rejected_after_shutdown_begins(self):
        broker = started()
        broker.shutdown()
        with pytest.raises(ServeError):
            broker.submit(lambda: None)


class TestShutdown:
    def test_drain_completes_accepted_work(self):
        broker = started(workers=2)
        futures = [broker.submit(lambda i=i: i)[0] for i in range(10)]
        broker.shutdown(drain=True)
        assert sorted(f.result(timeout=0) for f in futures) == list(range(10))

    def test_no_drain_cancels_queued_work(self):
        entered = threading.Event()
        broker = started(queue_limit=8, workers=1)

        def blocker():
            entered.set()
            threading.Event().wait(0.5)  # hold the only worker busy
            return "ran"

        running, _ = broker.submit(blocker)
        assert entered.wait(5)
        queued = [broker.submit(lambda: "late")[0] for _ in range(4)]
        # The worker is mid-blocker, so everything above is still
        # queued when shutdown empties the queue.
        broker.shutdown(drain=False)
        assert running.result(timeout=0) == "ran"
        assert all(f.cancelled() for f in queued)

    def test_shutdown_is_idempotent(self):
        broker = started()
        broker.shutdown()
        broker.shutdown()
