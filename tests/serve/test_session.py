"""Session-manager unit tests: LRU residency, isolation, shared memo."""

import pytest

from repro.errors import ProtocolError, SessionError
from repro.exec import StageMemo
from repro.io.store import DataStore
from repro.serve.session import SessionManager


class TestResidency:
    def test_created_on_first_use_and_reused(self):
        manager = SessionManager()
        first = manager.get("a")
        assert manager.get("a") is first
        assert len(manager) == 1

    def test_lru_eviction_beyond_capacity(self):
        manager = SessionManager(max_sessions=2)
        a = manager.get("a")
        manager.get("b")
        manager.get("a")          # refresh a's recency; b is now LRU
        manager.get("c")          # evicts b
        assert manager.ids() == ("a", "c")
        assert manager.evicted == 1
        assert manager.get("a") is a

    def test_evicted_session_is_rebuilt_fresh(self):
        manager = SessionManager(max_sessions=1)
        a = manager.get("a")
        manager.get("b")
        assert manager.get("a") is not a

    def test_peek_never_creates_or_touches(self):
        manager = SessionManager(max_sessions=2)
        assert manager.peek("a") is None
        manager.get("a")
        manager.get("b")
        assert manager.peek("a") is not None
        manager.get("c")          # a is LRU because peek did not touch it
        assert manager.ids() == ("b", "c")

    def test_drop(self):
        manager = SessionManager()
        manager.get("a")
        assert manager.drop("a")
        assert not manager.drop("a")
        assert len(manager) == 0

    def test_capacity_validated(self):
        with pytest.raises(SessionError):
            SessionManager(max_sessions=0)

    def test_session_id_validated(self):
        with pytest.raises(ProtocolError):
            SessionManager().get("../escape")


class TestIsolationAndSharing:
    def test_sessions_own_their_monitors(self):
        manager = SessionManager()
        assert manager.get("a").monitor is not manager.get("b").monitor

    def test_memo_is_shared_across_sessions(self):
        memo = StageMemo()
        manager = SessionManager(memo=memo)
        assert manager.get("a").monitor.pipeline.memo is memo
        assert manager.get("b").monitor.pipeline.memo is memo

    def test_per_session_store_scoping(self, tmp_path):
        manager = SessionManager(store=DataStore(tmp_path))
        store_a = manager.get("a").monitor.alerts.store
        store_b = manager.get("b").monitor.alerts.store
        assert store_a.root == tmp_path / "sessions" / "a"
        assert store_b.root == tmp_path / "sessions" / "b"

    def test_version_bumps_are_monotonic(self):
        session = SessionManager().get("a")
        assert session.version == 0
        assert session.bump() == 1
        assert session.bump() == 2
