"""Unit tests for chunk-at-a-time ingestion."""

import pytest

from repro.errors import StreamError
from repro.stream import FeedChunk, StreamIngestor
from repro.tle.format import format_tle_block

from tests.core.helpers import record
from tests.stream.conftest import START, hourly


class TestDedup:
    def test_duplicate_chunk_is_a_recorded_noop(self):
        ingestor = StreamIngestor()
        chunk = FeedChunk.of_dst(hourly([-10.0] * 4))
        first = ingestor.offer(chunk)
        second = ingestor.offer(chunk)
        assert not first.duplicate and first.new_dst_hours == 4
        assert second.duplicate and not second.changed
        marks = ingestor.watermarks
        assert marks.chunks == 2 and marks.duplicates == 1
        assert len(ingestor.state.dst) == 4

    def test_new_chunk_overlapping_old_data_dedups_records(self):
        ingestor = StreamIngestor()
        base = [record(1, 0.0, 550.0), record(1, 1.0, 550.0)]
        first = ingestor.offer_elements(base, chunk_id="batch-a")
        overlap = ingestor.offer_elements(
            base + [record(1, 2.0, 550.0)], chunk_id="batch-b"
        )
        assert first.new_records == 2
        assert not overlap.duplicate
        assert overlap.new_records == 1
        assert overlap.records_by_satellite == ((1, 1),)
        assert len(ingestor.state.catalog.get(1)) == 3

    def test_empty_chunks_are_rejected(self):
        ingestor = StreamIngestor()
        with pytest.raises(StreamError):
            ingestor.offer_dst(hourly([]))
        with pytest.raises(StreamError):
            ingestor.offer_elements([])


class TestWatermarks:
    def test_high_marks_track_latest_timestamps(self):
        ingestor = StreamIngestor()
        assert ingestor.watermarks.dst_high is None
        assert ingestor.watermarks.tle_high is None
        dst = hourly([-10.0] * 24)
        ingestor.offer_dst(dst)
        ingestor.offer_elements([record(1, 0.0, 550.0), record(1, 3.0, 550.0)])
        marks = ingestor.watermarks
        assert marks.dst_high == dst.end
        assert marks.tle_high == START.add_days(3.0)

    def test_appends_are_not_late(self):
        ingestor = StreamIngestor()
        ingestor.offer_dst(hourly([-10.0] * 24))
        delta = ingestor.offer_dst(hourly([-20.0] * 24, START.add_days(1.0)))
        assert not delta.late
        assert ingestor.watermarks.late == 0

    def test_backfill_is_late_but_never_dropped(self):
        ingestor = StreamIngestor()
        ingestor.offer_dst(hourly([-10.0] * 24, START.add_days(2.0)))
        delta = ingestor.offer_dst(hourly([-60.0] * 24))
        assert delta.late
        assert delta.new_dst_hours == 24
        assert ingestor.watermarks.late == 1
        # The watermark never regresses.
        assert ingestor.watermarks.dst_high.unix >= START.add_days(2.0).unix

    def test_tle_backfill_flagged(self):
        ingestor = StreamIngestor()
        ingestor.offer_elements([record(1, 10.0, 550.0)])
        delta = ingestor.offer_elements([record(2, 1.0, 550.0)])
        assert delta.late
        assert ingestor.watermarks.tle_high == START.add_days(10.0)


class TestTleText:
    def test_text_chunk_parses_and_counts_per_satellite(self):
        ingestor = StreamIngestor()
        text = format_tle_block(
            [record(1, 0.0, 550.0), record(1, 1.0, 550.0), record(2, 0.0, 540.0)]
        )
        delta = ingestor.offer_tle_text(text)
        assert delta.new_records == 3
        assert delta.records_by_satellite == ((1, 2), (2, 1))
        assert delta.dirty_satellites == (1, 2)

    def test_same_text_redelivered_is_duplicate(self):
        ingestor = StreamIngestor()
        text = format_tle_block([record(1, 0.0, 550.0)])
        assert ingestor.offer_tle_text(text).new_records == 1
        again = ingestor.offer_tle_text(text)
        assert again.duplicate
        assert ingestor.state.stats.tle_records_added == 1

    def test_corrupt_text_is_ledgered_once(self):
        ingestor = StreamIngestor()
        lines = format_tle_block([record(1, 0.0, 550.0)]).splitlines()
        lines[0] = lines[0][:-1] + "0"  # break the checksum
        corrupt = "\n".join(lines)
        delta = ingestor.offer_tle_text(corrupt)
        assert delta.new_records == 0
        assert ingestor.state.stats.tle_parse_errors == 1
        assert len(ingestor.state.ledger) == 1
        # Re-delivery is dropped at the chunk layer: no double ledgering.
        assert ingestor.offer_tle_text(corrupt).duplicate
        assert ingestor.state.stats.tle_parse_errors == 1
        assert len(ingestor.state.ledger) == 1
