"""Batch-vs-replay parity: the streaming subsystem's acceptance bar.

Replaying the seeded fleet through ``repro.stream`` in hourly chunks
must land on a ``result_digest`` byte-identical to the one-shot batch
run — serially and on a 2-worker pool.  Chunking changes cost, never
results.
"""

import pytest

from repro import analyze
from repro.exec import ParallelExecutor, result_digest
from repro.stream import StreamMonitor, split_feed


@pytest.fixture(scope="module")
def batch_digest(scenario):
    return result_digest(analyze(scenario.dst, scenario.catalog))


def replay_digest(scenario, *, chunk_hours, executor=None, run_every=None):
    monitor = StreamMonitor(executor=executor, run_every=run_every)
    updates = monitor.replay(
        split_feed(scenario.dst, scenario.catalog, chunk_hours=chunk_hours)
    )
    assert updates[-1].ran
    return result_digest(updates[-1].result)


class TestReplayParity:
    def test_hourly_serial_replay_matches_batch(self, scenario, batch_digest):
        assert replay_digest(scenario, chunk_hours=1.0) == batch_digest

    def test_hourly_two_worker_replay_matches_batch(self, scenario, batch_digest):
        digest = replay_digest(
            scenario, chunk_hours=1.0, executor=ParallelExecutor(2)
        )
        assert digest == batch_digest

    def test_mid_feed_refreshes_do_not_disturb_parity(self, scenario, batch_digest):
        # Daily chunks with periodic refreshes: intermediate runs over
        # partial data must not leak into the final result.
        digest = replay_digest(scenario, chunk_hours=24.0, run_every=50)
        assert digest == batch_digest

    def test_chunk_width_is_irrelevant(self, scenario, batch_digest):
        assert replay_digest(scenario, chunk_hours=24.0 * 7) == batch_digest
