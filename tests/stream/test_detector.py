"""Batch-parity and transition tests for the online storm detector.

The core guarantee under test: after consuming any prefix of an hourly
Dst series — in any chunk sizes — ``episodes()`` equals
``detect_episodes`` over that prefix.
"""

import numpy as np
import pytest

from repro.spaceweather.dst import HOUR_S, DstIndex
from repro.spaceweather.scales import StormLevel
from repro.spaceweather.storms import detect_episodes
from repro.stream import OnlineStormDetector
from repro.time import Epoch
from repro.timeseries import TimeSeries

from tests.stream.conftest import START, hourly


def prefix(dst: DstIndex, n: int) -> DstIndex:
    series = dst.series
    return DstIndex(TimeSeries(series.times[:n].copy(), series.values[:n].copy()))


def random_series(rng, hours=400, nan_fraction=0.05, hole_fraction=0.02) -> DstIndex:
    """A jagged synthetic Dst series with NaNs and missing hours."""
    values = rng.normal(-30.0, 60.0, size=hours)
    values[rng.random(hours) < nan_fraction] = np.nan
    keep = rng.random(hours) >= hole_fraction
    keep[0] = True
    times = START.unix + HOUR_S * np.arange(hours)
    return DstIndex(TimeSeries(times[keep], values[keep]))


def assert_same_episodes(online, batch):
    assert len(online) == len(batch)
    for a, b in zip(online, batch):
        assert a.start == b.start
        assert a.end == b.end
        assert a.duration_hours == b.duration_hours
        assert a.peak_nt == b.peak_nt or (
            np.isnan(a.peak_nt) and np.isnan(b.peak_nt)
        )


class TestBatchParity:
    @pytest.mark.parametrize("merge_gap", [0, 1, 3])
    def test_hour_by_hour_equals_batch_at_every_prefix(self, merge_gap):
        rng = np.random.default_rng(7)
        dst = random_series(rng, hours=200)
        detector = OnlineStormDetector(-50.0, merge_gap_hours=merge_gap)
        for n in range(1, len(dst) + 1):
            detector.observe(prefix(dst, n))
            batch = detect_episodes(
                prefix(dst, n), -50.0, merge_gap_hours=merge_gap
            )
            assert_same_episodes(detector.episodes(), batch)

    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    @pytest.mark.parametrize("threshold", [-30.0, -50.0, -100.0])
    def test_random_chunk_sizes_equal_batch(self, seed, threshold):
        rng = np.random.default_rng(seed)
        dst = random_series(rng)
        for merge_gap in (0, 2):
            detector = OnlineStormDetector(threshold, merge_gap_hours=merge_gap)
            cursor = 0
            while cursor < len(dst):
                size = int(rng.integers(1, 48))
                block = DstIndex(
                    TimeSeries(
                        dst.series.times[cursor : cursor + size].copy(),
                        dst.series.values[cursor : cursor + size].copy(),
                    )
                )
                detector.observe(block)
                cursor += size
            batch = detect_episodes(dst, threshold, merge_gap_hours=merge_gap)
            assert_same_episodes(detector.episodes(), batch)

    def test_data_hole_splits_like_batch(self):
        # 3 storm hours, a 5-hour hole, 2 more storm hours.
        times = np.concatenate(
            [
                START.unix + HOUR_S * np.arange(3),
                START.unix + HOUR_S * (8 + np.arange(2)),
            ]
        )
        values = np.array([-80.0, -90.0, -70.0, -60.0, -65.0])
        dst = DstIndex(TimeSeries(times, values))
        for merge_gap in (0, 4, 5):
            detector = OnlineStormDetector(-50.0, merge_gap_hours=merge_gap)
            detector.observe(dst)
            assert_same_episodes(
                detector.episodes(),
                detect_episodes(dst, -50.0, merge_gap_hours=merge_gap),
            )

    def test_rebuild_equals_batch_after_backfill(self):
        late = hourly([-120.0] * 4)
        current = hourly([-10.0] * 3 + [-70.0] * 2, START.add_days(1.0))
        detector = OnlineStormDetector(-50.0)
        detector.observe(current)
        # Backfill arrived: merge and rebuild, as the monitor does.
        merged_times = np.concatenate([late.series.times, current.series.times])
        merged_values = np.concatenate([late.series.values, current.series.values])
        merged = DstIndex(TimeSeries(merged_times, merged_values))
        detector.rebuild(merged)
        assert_same_episodes(detector.episodes(), detect_episodes(merged, -50.0))

    def test_negative_merge_gap_rejected(self):
        with pytest.raises(ValueError):
            OnlineStormDetector(merge_gap_hours=-1)


class TestTransitions:
    def test_onset_reported_once(self, stormy_dst):
        detector = OnlineStormDetector(-50.0)
        delta = detector.observe(stormy_dst)
        assert len(delta.opened) == 2
        # Consuming the same data again reports nothing new.
        again = detector.observe(stormy_dst)
        assert not again.any

    def test_upgrade_fires_on_noaa_band_crossing(self):
        detector = OnlineStormDetector(-50.0)
        first = detector.observe(hourly([-10.0, -60.0]))
        assert len(first.opened) == 1
        assert first.opened[0].level is StormLevel.MINOR
        deeper = detector.observe(hourly([-130.0], START.add_hours(2.0)))
        assert len(deeper.upgraded) == 1
        episode, previous = deeper.upgraded[0]
        assert previous is StormLevel.MINOR
        assert episode.level is StormLevel.MODERATE
        # Deepening inside the same band is not an upgrade.
        same_band = detector.observe(hourly([-150.0], START.add_hours(3.0)))
        assert not same_band.upgraded

    def test_end_reported_once_even_across_rebuilds(self, stormy_dst):
        detector = OnlineStormDetector(-50.0)
        delta = detector.observe(stormy_dst)
        assert len(delta.closed) == 2
        rebuilt = detector.rebuild(stormy_dst)
        assert not rebuilt.any

    def test_open_episode_is_provisional(self):
        detector = OnlineStormDetector(-50.0)
        detector.observe(hourly([-10.0, -80.0, -90.0]))
        open_episode = detector.open_episode
        assert open_episode is not None
        assert open_episode.peak_nt == -90.0
        assert detector.episodes() == [open_episode]
        # Quiet hour closes it.
        delta = detector.observe(hourly([-10.0], START.add_hours(3.0)))
        assert len(delta.closed) == 1
        assert detector.open_episode is None
