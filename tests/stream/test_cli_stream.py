"""CLI coverage for the streaming subcommands (replay, watch)."""

import numpy as np
import pytest

from repro.cli import main
from repro.io import DataStore
from repro.spaceweather import DstIndex
from repro.time import Epoch
from repro.tle import SatelliteCatalog

from tests.core.helpers import record


@pytest.fixture
def cache(tmp_path):
    hours = np.arange(24 * 60)
    values = -10.0 + 3.0 * np.sin(0.7 * hours)
    values[700:706] = -150.0
    store = DataStore(tmp_path / "cache")
    store.save_dst(DstIndex.from_hourly(Epoch.from_calendar(2023, 1, 1), values))
    catalog = SatelliteCatalog()
    for day in range(60):
        catalog.add(record(44713, float(day), 550.0))
        catalog.add(record(44800, float(day), 550.0 - max(0, day - 30) * 1.5))
    store.save_catalog(catalog)
    return store.root


class TestReplayCommand:
    def test_replay_verifies_parity(self, cache, capsys):
        code = main(
            [
                "replay", "--cache", str(cache),
                "--chunk-hours", "168", "--run-every", "5",
                "--verify-parity",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "parity OK" in out
        assert "result digest:" in out
        assert "storm.onset" in out

    def test_replay_journals_alerts(self, cache, capsys):
        assert main(["replay", "--cache", str(cache)]) == 0
        capsys.readouterr()
        lines = DataStore(cache).load_alerts()
        assert lines is not None and len(lines) > 0

    def test_replay_without_dataset_fails(self, tmp_path, capsys):
        assert main(["replay", "--cache", str(tmp_path / "empty")]) == 1
        assert "no dataset" in capsys.readouterr().err


class TestWatchCommand:
    def test_watch_smoke(self, tmp_path, capsys):
        code = main(
            [
                "watch", "--scenario", "quickstart",
                "--chunk-hours", "2000", "--max-chunks", "3",
                "--out", str(tmp_path / "watch-cache"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "watching scenario 'quickstart'" in out
        assert "final:" in out
        assert "alert log:" in out

    def test_watch_handles_truncated_feed(self, capsys):
        # One dst-only chunk: no analysis possible, but no crash either.
        assert main(["watch", "--chunk-hours", "1", "--max-chunks", "1"]) == 0
        assert "before both data modalities" in capsys.readouterr().out
