"""Shared fixtures for the streaming-subsystem suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation.scenario import quickstart_scenario
from repro.spaceweather.dst import DstIndex
from repro.time import Epoch

START = Epoch.from_calendar(2023, 1, 1)


@pytest.fixture(scope="session")
def scenario():
    """The seeded fleet every parity/efficiency test replays."""
    return quickstart_scenario(seed=2)


def hourly(values, start: Epoch = START) -> DstIndex:
    """A DstIndex from a plain list of hourly values."""
    return DstIndex.from_hourly(start, np.asarray(values, dtype=np.float64))


@pytest.fixture
def stormy_dst() -> DstIndex:
    """Quiet → G1 storm (deepening to G2) → quiet → second storm."""
    values = (
        [-10.0] * 10
        + [-60.0, -80.0, -120.0, -130.0, -90.0, -55.0]
        + [-10.0] * 10
        + [-70.0] * 3
        + [-20.0] * 5
    )
    return hourly(values)
