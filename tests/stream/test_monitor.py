"""Unit tests for the streaming monitor (delta efficiency, cadence)."""

import pytest

from repro.errors import StreamError
from repro.io import DataStore
from repro.stream import FeedChunk, StreamMonitor, split_feed
from repro.stream.alerts import AlertKind
from repro.tle import SatelliteCatalog

from tests.core.helpers import record
from tests.stream.conftest import hourly


def small_dataset(satellites=3, days=30, storm_hour=200):
    values = [-10.0] * 24 * days
    values[storm_hour : storm_hour + 4] = [-120.0] * 4
    dst = hourly(values)
    catalog = SatelliteCatalog()
    for number in range(1, satellites + 1):
        for day in range(days):
            catalog.add(record(number, float(day), 550.0))
    return dst, catalog


class TestLifecycle:
    def test_run_every_validated(self):
        with pytest.raises(StreamError):
            StreamMonitor(run_every=0)

    def test_not_ready_before_both_modalities(self):
        monitor = StreamMonitor()
        assert not monitor.ready()
        monitor.offer(FeedChunk.of_dst(hourly([-10.0] * 24)))
        assert not monitor.ready()
        monitor.offer(FeedChunk.of_elements([record(1, 0.0, 550.0)]))
        assert monitor.ready()

    def test_storm_alerts_fire_without_any_refresh(self):
        dst, _ = small_dataset()
        monitor = StreamMonitor()
        update = monitor.offer(FeedChunk.of_dst(dst))
        kinds = [a.kind for a in update.alerts]
        assert AlertKind.STORM_ONSET in kinds
        assert AlertKind.STORM_END in kinds
        assert not update.ran

    def test_duplicate_chunk_is_inert(self):
        dst, catalog = small_dataset()
        monitor = StreamMonitor(run_every=1)
        chunk = FeedChunk.of_elements(catalog.all_elements())
        monitor.offer(FeedChunk.of_dst(dst))
        first = monitor.step(chunk)
        assert first.ran
        again = monitor.step(chunk)
        assert again.delta.duplicate
        assert not again.ran  # duplicates do not advance the cadence
        assert again.alerts == ()


class TestCadence:
    def test_run_every_refreshes_on_schedule(self):
        from repro.obs import Tracer

        dst, catalog = small_dataset()
        monitor = StreamMonitor(run_every=2, tracer=Tracer())
        chunks = split_feed(dst, catalog, chunk_hours=24.0 * 10)
        updates = monitor.replay(chunks)
        refreshes = [u for u in updates if u.ran]
        assert len(refreshes) >= 2
        assert monitor.pipeline.metrics.counter("stream.refreshes").value == len(
            refreshes
        )

    def test_replay_always_ends_refreshed(self):
        dst, catalog = small_dataset()
        monitor = StreamMonitor()  # manual cadence
        updates = monitor.replay(split_feed(dst, catalog, chunk_hours=24.0 * 7))
        assert updates[-1].ran
        assert monitor.result is updates[-1].result


class TestDeltaEfficiency:
    def test_new_chunk_recomputes_only_dirty_pairs(self):
        dst, catalog = small_dataset(satellites=4)
        monitor = StreamMonitor()
        monitor.replay(split_feed(dst, catalog, chunk_hours=24.0 * 10))
        memo = monitor.pipeline.memo
        hits, misses = memo.hits, memo.misses

        # One new TLE for satellite 2 only.
        update = monitor.offer(FeedChunk.of_elements([record(2, 30.0, 549.0)]))
        assert update.delta.dirty_satellites == (2,)
        refresh = monitor.refresh()
        assert refresh.plan.dirty == (2,)
        assert refresh.plan.clean == (1, 3, 4)
        assert not refresh.plan.storms_dirty
        assert memo.misses - misses == 1
        assert memo.hits - hits == 3

    def test_noop_refresh_plan_is_empty(self):
        dst, catalog = small_dataset()
        monitor = StreamMonitor()
        monitor.replay(split_feed(dst, catalog, chunk_hours=24.0 * 10))
        memo = monitor.pipeline.memo
        misses = memo.misses
        refresh = monitor.refresh()
        assert refresh.plan.dirty == ()
        assert not refresh.plan.any_dirty
        assert memo.misses == misses


class TestAlertJournal:
    def test_monitor_journals_alerts_to_its_store(self, tmp_path):
        dst, catalog = small_dataset()
        store = DataStore(tmp_path / "cache")
        monitor = StreamMonitor(store=store)
        monitor.replay(split_feed(dst, catalog, chunk_hours=24.0 * 10))
        lines = store.load_alerts()
        assert lines is not None
        assert len(lines) == len(monitor.alerts.emitted)
        assert len(lines) > 0
