"""Regression: ``replay()`` must hand the caller's config to BOTH
pipelines it builds.

The staging pipeline (which only coerces and ingests the batch inputs)
used to be constructed bare, silently dropping ingest-affecting knobs
whenever the monitor path was used.  A constructor spy pins the fix.
"""

import io

import repro.api as api
from repro import CosmicDance, CosmicDanceConfig, replay
from repro.io.csvio import write_dst_csv
from repro.tle.format import format_tle_block

from tests.core.helpers import record
from tests.stream.conftest import hourly


def tiny_feed():
    buf = io.StringIO()
    write_dst_csv(hourly([-10.0] * 48), buf)
    tle = format_tle_block([record(1, float(day), 550.0) for day in range(2)])
    return buf.getvalue(), tle


def test_staging_pipeline_sees_the_callers_config(monkeypatch):
    seen = []

    class Spy(CosmicDance):
        def __init__(self, config=None, **kwargs):
            seen.append(config)
            super().__init__(config, **kwargs)

    monkeypatch.setattr(api, "CosmicDance", Spy)
    config = CosmicDanceConfig(strict=True)
    dst_text, tle_text = tiny_feed()
    monitor, _ = replay(dst_text, tle_text, config=config)
    # Exactly one staging pipeline was built, and with our config —
    # not a default-constructed one.
    assert seen == [config]
    # The monitor's own pipeline got the same config.
    assert monitor.config is config


def test_default_config_still_defaults(monkeypatch):
    seen = []

    class Spy(CosmicDance):
        def __init__(self, config=None, **kwargs):
            seen.append(config)
            super().__init__(config, **kwargs)

    monkeypatch.setattr(api, "CosmicDance", Spy)
    dst_text, tle_text = tiny_feed()
    replay(dst_text, tle_text)
    assert seen == [None]
