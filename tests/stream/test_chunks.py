"""Unit tests for feed chunks and the batch → feed splitter."""

import numpy as np
import pytest

from repro.errors import StreamError
from repro.spaceweather.dst import DstIndex
from repro.stream import FeedChunk, StreamIngestor, split_feed
from repro.stream.chunks import dst_block_id
from repro.time import Epoch
from repro.tle import SatelliteCatalog

from tests.core.helpers import record
from tests.stream.conftest import START, hourly


class TestFeedChunk:
    def test_unknown_kind_rejected(self):
        with pytest.raises(StreamError):
            FeedChunk(chunk_id="x", kind="weather")

    def test_dst_kind_needs_dst_payload(self):
        with pytest.raises(StreamError):
            FeedChunk(chunk_id="x", kind="dst")
        with pytest.raises(StreamError):
            FeedChunk(chunk_id="x", kind="tle", dst=hourly([-10.0]))

    def test_tle_kind_needs_elements(self):
        with pytest.raises(StreamError):
            FeedChunk(chunk_id="x", kind="tle")

    def test_content_ids_are_stable(self):
        dst = hourly([-10.0, -60.0])
        assert FeedChunk.of_dst(dst).chunk_id == FeedChunk.of_dst(dst).chunk_id
        assert FeedChunk.of_dst(dst).chunk_id == dst_block_id(dst)
        elements = (record(1, 0.0, 550.0), record(1, 1.0, 550.0))
        assert (
            FeedChunk.of_elements(elements).chunk_id
            == FeedChunk.of_elements(list(elements)).chunk_id
        )

    def test_content_ids_differ_with_content(self):
        a = FeedChunk.of_dst(hourly([-10.0]))
        b = FeedChunk.of_dst(hourly([-20.0]))
        assert a.chunk_id != b.chunk_id

    def test_span(self):
        dst = hourly([-10.0] * 5)
        start, end = FeedChunk.of_dst(dst).span
        assert start == dst.start and end == dst.end
        chunk = FeedChunk.of_elements([record(2, 3.0, 550.0), record(1, 1.0, 550.0)])
        start, end = chunk.span
        assert start == START.add_days(1.0)
        assert end == START.add_days(3.0)


class TestSplitFeed:
    def _dataset(self, days=4, satellites=3):
        dst = hourly([-10.0] * 24 * days)
        catalog = SatelliteCatalog()
        for number in range(1, satellites + 1):
            for day in range(days):
                catalog.add(record(number, float(day), 550.0))
        return dst, catalog

    def test_rejects_nonpositive_chunk_hours(self):
        dst, catalog = self._dataset()
        with pytest.raises(StreamError):
            split_feed(dst, catalog, chunk_hours=0.0)
        with pytest.raises(StreamError):
            split_feed(dst, catalog, chunk_hours=-1.0)

    def test_empty_dataset_yields_no_chunks(self):
        empty = DstIndex.from_hourly(START, np.zeros(0))
        assert split_feed(empty, SatelliteCatalog()) == []

    def test_chunks_are_time_ordered(self):
        dst, catalog = self._dataset()
        chunks = split_feed(dst, catalog, chunk_hours=24.0)
        starts = [chunk.span[0].unix for chunk in chunks]
        assert starts == sorted(starts)

    def test_window_ids_pair_modalities(self):
        dst, catalog = self._dataset(days=2)
        ids = [c.chunk_id for c in split_feed(dst, catalog, chunk_hours=24.0)]
        assert ids == ["dst-000000", "tle-000000", "dst-000001", "tle-000001"]

    def test_replaying_the_feed_reconstructs_the_dataset(self):
        dst, catalog = self._dataset(days=5, satellites=4)
        ingestor = StreamIngestor()
        for chunk in split_feed(dst, catalog, chunk_hours=6.0):
            delta = ingestor.offer(chunk)
            assert not delta.duplicate
        rebuilt = ingestor.state.dst
        assert len(rebuilt) == len(dst)
        np.testing.assert_array_equal(rebuilt.series.times, dst.series.times)
        np.testing.assert_array_equal(rebuilt.series.values, dst.series.values)
        assert len(ingestor.state.catalog) == len(catalog)
        assert sorted(ingestor.state.catalog.catalog_numbers) == sorted(
            catalog.catalog_numbers
        )
        for number in catalog.catalog_numbers:
            assert len(ingestor.state.catalog.get(number)) == len(catalog.get(number))

    def test_chunking_granularity_does_not_change_totals(self):
        dst, catalog = self._dataset(days=3, satellites=2)
        for chunk_hours in (1.0, 7.0, 24.0, 1000.0):
            chunks = split_feed(dst, catalog, chunk_hours=chunk_hours)
            total_hours = sum(len(c.dst) for c in chunks if c.kind == "dst")
            total_records = sum(len(c.elements) for c in chunks if c.kind == "tle")
            assert total_hours == len(dst)
            assert total_records == catalog.total_records()
