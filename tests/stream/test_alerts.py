"""Unit tests for typed alerts and the alert engine."""

import json

from repro.core.triggers import TrajectoryTrigger
from repro.io import DataStore
from repro.obs import MetricsRegistry
from repro.stream import Alert, AlertEngine, OnlineStormDetector
from repro.stream.alerts import AlertKind
from repro.time import Epoch

from tests.stream.conftest import START, hourly


def storm_delta(values):
    detector = OnlineStormDetector(-50.0)
    return detector.observe(hourly(values))


class TestAlertMapping:
    def test_onset_carries_g_scale_and_severity(self):
        delta = storm_delta([-10.0, -130.0, -10.0])
        alerts = AlertEngine().from_storm_delta(delta)
        onset = [a for a in alerts if a.kind is AlertKind.STORM_ONSET][0]
        assert onset.severity == 2
        assert onset.g_scale == "G2"
        assert onset.value == -130.0
        assert onset.when == START.add_hours(1.0)

    def test_minor_storm_is_informational(self):
        # Exactly at the quiet edge: level MINOR maps to G1.
        delta = storm_delta([-10.0, -50.0, -10.0])
        onset = AlertEngine().from_storm_delta(delta)[0]
        assert onset.severity == 1
        assert onset.g_scale == "G1"

    def test_end_alert_reports_duration(self):
        delta = storm_delta([-10.0, -80.0, -90.0, -10.0])
        alerts = AlertEngine().from_storm_delta(delta)
        end = [a for a in alerts if a.kind is AlertKind.STORM_END][0]
        assert "2 h" in end.message
        assert end.severity == 1

    def test_trigger_alerts_name_the_satellite(self):
        triggers = [
            TrajectoryTrigger(44713, "altitude-drop", START.add_days(10.0), 5.2),
            TrajectoryTrigger(44800, "bstar-spike", START.add_days(11.0), 3.1),
            TrajectoryTrigger(44800, "permanent-decay", START.add_days(12.0), 30.0),
        ]
        alerts = AlertEngine().from_triggers(triggers)
        assert [a.kind for a in alerts] == [
            AlertKind.ALTITUDE_DROP,
            AlertKind.BSTAR_SPIKE,
            AlertKind.PERMANENT_DECAY,
        ]
        assert alerts[0].catalog_number == 44713
        assert "44713" in alerts[0].message
        assert alerts[2].severity == 3


class TestDedup:
    def test_same_physical_event_alerts_once(self):
        engine = AlertEngine()
        delta = storm_delta([-10.0, -130.0, -10.0])
        first = engine.emit(engine.from_storm_delta(delta))
        assert len(first) == 2  # onset + end
        again = engine.emit(engine.from_storm_delta(delta))
        assert again == []
        assert len(engine.emitted) == 2

    def test_distinct_events_pass(self):
        engine = AlertEngine()
        a = Alert(AlertKind.STORM_ONSET, START, "a", 1, g_scale="G1")
        b = Alert(AlertKind.STORM_ONSET, START.add_hours(1.0), "b", 1, g_scale="G1")
        assert len(engine.emit([a, b])) == 2


class TestSinks:
    def test_journal_roundtrip(self, tmp_path):
        store = DataStore(tmp_path / "cache")
        engine = AlertEngine(store)
        delta = storm_delta([-10.0, -130.0, -10.0])
        emitted = engine.emit(engine.from_storm_delta(delta))
        lines = store.load_alerts()
        assert lines is not None and len(lines) == len(emitted)
        events = [json.loads(line) for line in lines]
        assert all(event["type"] == "alert" for event in events)
        rebuilt = [Alert.from_event(event) for event in events]
        assert [a.to_event() for a in rebuilt] == events
        assert [a.kind for a in rebuilt] == [a.kind for a in emitted]

    def test_journal_appends_across_emits(self, tmp_path):
        store = DataStore(tmp_path / "cache")
        engine = AlertEngine(store)
        engine.emit([Alert(AlertKind.STORM_ONSET, START, "a", 1)])
        engine.emit([Alert(AlertKind.STORM_END, START.add_hours(4.0), "b", 1)])
        assert len(store.load_alerts()) == 2

    def test_metrics_counted_per_kind(self):
        metrics = MetricsRegistry()
        engine = AlertEngine(metrics=metrics)
        delta = storm_delta([-10.0, -130.0, -10.0])
        engine.emit(engine.from_storm_delta(delta))
        assert metrics.counter("alerts.storm.onset").value == 1
        assert metrics.counter("alerts.storm.end").value == 1

    def test_events_are_trace_appendable(self):
        engine = AlertEngine()
        engine.emit([Alert(AlertKind.STORM_ONSET, START, "a", 2, g_scale="G1")])
        events = engine.events()
        assert events[0]["kind"] == "storm.onset"
        assert events[0]["severity"] == 2
        assert Epoch.from_iso(events[0]["when"]) == START
