"""Unit tests for the delta-aware re-analysis planner."""

from repro.core.config import CosmicDanceConfig
from repro.core.pipeline import CosmicDance, satellite_task
from repro.exec import StageMemo
from repro.stream import DeltaPlanner, StreamIngestor
from repro.tle import SatelliteCatalog

from tests.core.helpers import record
from tests.stream.conftest import hourly


def small_dataset(satellites=3, days=30):
    dst = hourly([-10.0] * 24 * days)
    catalog = SatelliteCatalog()
    for number in range(1, satellites + 1):
        for day in range(days):
            catalog.add(record(number, float(day), 550.0))
    return dst, catalog


def warm_pipeline(dst, catalog, memo, config):
    pipeline = CosmicDance(config, memo=memo)
    pipeline.ingest.add_dst(dst)
    pipeline.ingest.add_elements(catalog.all_elements())
    pipeline.run()
    return pipeline


class TestDigestCache:
    def test_cached_digest_matches_fresh_hash(self):
        _, catalog = small_dataset(satellites=1)
        planner = DeltaPlanner()
        history = catalog.get(1)
        first = planner.task_for(history)
        second = planner.task_for(history)
        assert first.digest == satellite_task(history).digest
        assert second.digest == first.digest
        assert second.elements == first.elements

    def test_growth_invalidates_the_cached_digest(self):
        _, catalog = small_dataset(satellites=1, days=5)
        planner = DeltaPlanner()
        history = catalog.get(1)
        before = planner.task_for(history).digest
        history.add(record(1, 5.0, 549.0))
        after = planner.task_for(history)
        assert after.digest != before
        assert after.digest == satellite_task(history).digest

    def test_invalidate_drops_cached_entries(self):
        _, catalog = small_dataset(satellites=2, days=5)
        planner = DeltaPlanner()
        planner.task_for(catalog.get(1))
        planner.task_for(catalog.get(2))
        planner.invalidate(1)
        assert 1 not in planner._digests and 2 in planner._digests
        planner.invalidate()
        assert not planner._digests


class TestPlanning:
    def test_cold_plan_marks_everything_dirty(self):
        _, catalog = small_dataset()
        planner = DeltaPlanner()
        plan = planner.plan(catalog, memo=StageMemo())
        assert plan.dirty == (1, 2, 3)
        assert plan.clean == ()
        assert plan.storms_dirty and plan.associate_dirty and plan.any_dirty

    def test_warm_plan_is_clean(self):
        dst, catalog = small_dataset()
        memo = StageMemo()
        config = CosmicDanceConfig()
        warm_pipeline(dst, catalog, memo, config)
        planner = DeltaPlanner()
        planner.commit()  # pretend the warm run was ours
        plan = planner.plan(catalog, memo=memo, config=config)
        assert plan.dirty == ()
        assert plan.clean == (1, 2, 3)
        assert not plan.storms_dirty
        assert not plan.any_dirty
        assert plan.pairs() == []

    def test_dirty_satellite_and_dst_tracked_separately(self):
        dst, catalog = small_dataset()
        memo = StageMemo()
        config = CosmicDanceConfig()
        warm_pipeline(dst, catalog, memo, config)
        planner = DeltaPlanner()
        planner.commit()
        # A new TLE for satellite 2 arrives through the ingest path.
        ingestor = StreamIngestor()
        ingestor.state.add_elements(catalog.all_elements())
        delta = ingestor.offer_elements([record(2, 30.0, 549.0)])
        planner.note(delta)
        assert planner.pending_dirty == frozenset({2})
        plan = planner.plan(
            ingestor.state.catalog, memo=memo, config=config
        )
        assert plan.dirty == (2,)
        assert plan.clean == (1, 3)
        assert not plan.storms_dirty  # no new Dst hours
        assert plan.associate_dirty  # fleet side changed
        assert plan.pairs() == [(2, "fleet"), (None, "associate")]

    def test_plan_probe_moves_no_memo_counters(self):
        dst, catalog = small_dataset()
        memo = StageMemo()
        config = CosmicDanceConfig()
        warm_pipeline(dst, catalog, memo, config)
        hits, misses = memo.hits, memo.misses
        DeltaPlanner().plan(catalog, memo=memo, config=config)
        assert (memo.hits, memo.misses) == (hits, misses)

    def test_duplicate_deltas_do_not_dirty(self):
        planner = DeltaPlanner()
        ingestor = StreamIngestor()
        chunk_delta = ingestor.offer_elements([record(1, 0.0, 550.0)])
        duplicate = ingestor.offer_elements(
            [record(1, 0.0, 550.0)], chunk_id=chunk_delta.chunk_id
        )
        planner.note(duplicate)
        assert planner.pending_dirty == frozenset()

    def test_commit_clears_pending_state(self):
        planner = DeltaPlanner()
        ingestor = StreamIngestor()
        planner.note(ingestor.offer_dst(hourly([-10.0] * 24)))
        planner.note(ingestor.offer_elements([record(1, 0.0, 550.0)]))
        assert planner.pending_dst_hours == 24
        assert planner.pending_dirty == frozenset({1})
        planner.commit()
        assert planner.pending_dst_hours == 0
        assert planner.pending_dirty == frozenset()
