"""Tests for :mod:`repro.inputs` — the shared input-coercion front door.

Every public entry point (analyze/replay/CLI/serve) routes through
these coercers, so this suite pins the accepted-shape contract: what
each coercer takes, what it rejects, and that lenient TLE parsing
ledgers failures exactly like batch ingest.
"""

import io

import pytest

from repro.core.ingest import IngestState
from repro.errors import InputError, PipelineError
from repro.inputs import coerce_dst, coerce_elements, ingest_elements
from repro.io.csvio import write_dst_csv
from repro.robustness.health import QuarantineLedger
from repro.spaceweather.dst import DstIndex
from repro.spaceweather.wdc import format_wdc
from repro.tle import SatelliteCatalog
from repro.tle.format import format_tle_block

from tests.core.helpers import record
from tests.stream.conftest import hourly


@pytest.fixture
def dst():
    return hourly([-10.0 - (i % 30) for i in range(48)])


@pytest.fixture
def elements():
    return [record(1, float(day), 550.0) for day in range(3)] + [
        record(2, 0.0, 560.0)
    ]


def with_bad_line(text: str) -> str:
    # Appended, not inserted: a stray line mid-dump would desync the
    # two-line pairing and eat the following good record as well.
    return text + "1 99999U GARBAGE RECORD THAT WILL NOT PARSE\n"


class TestCoerceDst:
    def test_parsed_index_passes_through(self, dst):
        assert coerce_dst(dst) is dst

    def test_csv_text_round_trips(self, dst):
        buf = io.StringIO()
        write_dst_csv(dst, buf)
        back = coerce_dst(buf.getvalue())
        assert list(back.series.values) == pytest.approx(
            list(dst.series.values)
        )

    def test_wdc_text_round_trips(self, dst):
        back = coerce_dst(format_wdc(dst))
        assert len(back) == len(dst)
        assert list(back.series.values) == pytest.approx(
            list(dst.series.values)
        )

    def test_unparsable_text_is_typed(self):
        with pytest.raises(InputError, match="unparsable Dst text"):
            coerce_dst("timestamp,this is not really a csv\n???")

    def test_wrong_type_names_the_offender(self):
        with pytest.raises(InputError, match="got int"):
            coerce_dst(12345)

    def test_input_error_is_a_pipeline_error(self):
        with pytest.raises(PipelineError):
            coerce_dst(None)


class TestCoerceElements:
    def test_catalog_flattens_to_elements(self, elements):
        catalog = SatelliteCatalog()
        for element in elements:
            catalog.add(element)
        out = coerce_elements(catalog)
        assert sorted(e.catalog_number for e in out) == [1, 1, 1, 2]

    def test_iterables_pass_through_as_tuples(self, elements):
        assert coerce_elements(elements) == tuple(elements)
        assert coerce_elements(iter(elements)) == tuple(elements)

    def test_text_parses(self, elements):
        out = coerce_elements(format_tle_block(elements))
        assert len(out) == len(elements)
        assert {e.catalog_number for e in out} == {1, 2}

    def test_lenient_text_skips_bad_records(self, elements):
        out = coerce_elements(with_bad_line(format_tle_block(elements)))
        assert len(out) == len(elements)

    def test_lenient_text_ledgers_under_source(self, elements):
        ledger = QuarantineLedger()
        coerce_elements(
            with_bad_line(format_tle_block(elements)),
            ledger=ledger,
            source="feed-7",
        )
        (entry,) = ledger.entries
        assert entry.identifier == "feed-7"
        assert entry.stage == "ingest"
        assert "unparsable TLE record(s)" in entry.reason

    def test_clean_text_leaves_the_ledger_alone(self, elements):
        ledger = QuarantineLedger()
        coerce_elements(format_tle_block(elements), ledger=ledger)
        assert not ledger

    def test_strict_text_raises_with_line_number(self, elements):
        with pytest.raises(InputError, match="first at line 9"):
            coerce_elements(
                with_bad_line(format_tle_block(elements)), strict=True
            )

    def test_wrong_type_names_the_offender(self):
        with pytest.raises(InputError, match="got int"):
            coerce_elements(42)

    def test_iterable_of_wrong_items_rejected(self):
        with pytest.raises(InputError, match="got str"):
            coerce_elements(["not an element"])


class TestIngestElements:
    def test_text_routes_through_batch_ingest(self, elements):
        state = IngestState()
        added = ingest_elements(
            state, with_bad_line(format_tle_block(elements)), source="feed-7"
        )
        assert added == {1: 3, 2: 1}
        # Parse failures land on the state's own ledger, exactly as in
        # batch ingest — the digest-bearing path.
        (entry,) = state.ledger.entries
        assert entry.identifier == "feed-7"

    def test_parsed_routes_through_element_merge(self, elements):
        state = IngestState()
        assert ingest_elements(state, elements) == {1: 3, 2: 1}
        assert ingest_elements(state, elements) == {}  # all duplicates
        assert not state.ledger
