"""Unit tests for drag physics."""

import pytest

from repro.atmosphere import (
    BallisticCoefficient,
    STARLINK_BALLISTIC,
    bstar_for_density_ratio,
    decay_rate_km_per_day,
    drag_acceleration_m_s2,
)
from repro.atmosphere.density import density_quiet_kg_m3
from repro.atmosphere.drag import BSTAR_QUIET_550
from repro.errors import SimulationError


class TestBallisticCoefficient:
    def test_starlink_b(self):
        # Cd*A/m = 2.2 * 20 / 260 ~ 0.169 m^2/kg.
        assert STARLINK_BALLISTIC.b_m2_kg == pytest.approx(0.169, abs=0.01)

    def test_rejects_nonpositive(self):
        with pytest.raises(SimulationError):
            BallisticCoefficient(0.0, 1.0)
        with pytest.raises(SimulationError):
            BallisticCoefficient(100.0, -1.0)

    def test_reduced_cross_section(self):
        reduced = STARLINK_BALLISTIC.with_reduced_cross_section(0.5)
        assert reduced.b_m2_kg == pytest.approx(STARLINK_BALLISTIC.b_m2_kg / 2)

    def test_reduced_cross_section_rejects_bad_factor(self):
        with pytest.raises(SimulationError):
            STARLINK_BALLISTIC.with_reduced_cross_section(0.0)
        with pytest.raises(SimulationError):
            STARLINK_BALLISTIC.with_reduced_cross_section(1.5)


class TestDragAcceleration:
    def test_formula(self):
        # 0.5 * rho * v^2 * B.
        a = drag_acceleration_m_s2(1e-13, 7.6)
        expected = 0.5 * 1e-13 * 7600.0**2 * STARLINK_BALLISTIC.b_m2_kg
        assert a == pytest.approx(expected)

    def test_rejects_negative_density(self):
        with pytest.raises(SimulationError):
            drag_acceleration_m_s2(-1.0, 7.6)


class TestDecayRate:
    def test_negative_rate(self):
        rate = decay_rate_km_per_day(550.0, density_quiet_kg_m3(550.0))
        assert rate < 0

    def test_quiet_550km_magnitude(self):
        # Quiet solar-max decay at 550 km: order 100s of m/day for a
        # non-station-kept Starlink-class satellite.
        rate = decay_rate_km_per_day(550.0, density_quiet_kg_m3(550.0))
        assert 0.05 < -rate < 0.5

    def test_decay_accelerates_at_lower_altitude(self):
        r550 = decay_rate_km_per_day(550.0, density_quiet_kg_m3(550.0))
        r350 = decay_rate_km_per_day(350.0, density_quiet_kg_m3(350.0))
        assert -r350 > 10 * -r550

    def test_scales_with_density(self):
        rho = density_quiet_kg_m3(550.0)
        r1 = decay_rate_km_per_day(550.0, rho)
        r5 = decay_rate_km_per_day(550.0, 5 * rho)
        assert r5 == pytest.approx(5 * r1)

    def test_rejects_negative_density(self):
        with pytest.raises(SimulationError):
            decay_rate_km_per_day(550.0, -1.0)


class TestBstarBehaviour:
    def test_quiet_ratio(self):
        assert bstar_for_density_ratio(1.0) == BSTAR_QUIET_550

    def test_proportional(self):
        assert bstar_for_density_ratio(5.0) == pytest.approx(5 * BSTAR_QUIET_550)

    def test_custom_quiet_value(self):
        assert bstar_for_density_ratio(2.0, quiet_bstar=1e-3) == pytest.approx(2e-3)

    def test_rejects_negative_ratio(self):
        with pytest.raises(SimulationError):
            bstar_for_density_ratio(-0.1)
