"""Unit tests for orbital lifetime estimation."""

import pytest

from repro.atmosphere import ThermosphereModel
from repro.atmosphere.drag import STARLINK_BALLISTIC
from repro.atmosphere.lifetime import lifetime_table, orbital_lifetime
from repro.errors import SimulationError
from repro.spaceweather import DstIndex
from repro.time import Epoch


class TestOrbitalLifetime:
    def test_staging_orbit_decays_in_weeks_to_months(self):
        # The Feb 2022 narrative: uncontrolled at ~350 km is short-lived.
        estimate = orbital_lifetime(350.0)
        assert not estimate.truncated
        assert 10.0 < estimate.days < 400.0

    def test_operational_orbit_much_longer_lived(self):
        # Under the solar-max density profile, uncontrolled decay from
        # 550 km takes the better part of a year — an order of
        # magnitude beyond the staging orbit.
        operational = orbital_lifetime(550.0, max_days=30 * 365.25)
        staging = orbital_lifetime(350.0)
        assert not operational.truncated
        assert operational.days > 250.0
        assert operational.days > 10 * staging.days

    def test_lifetime_monotone_in_altitude(self):
        estimates = lifetime_table([350.0, 450.0, 550.0], max_days=30 * 365.25)
        days = [e.days for e in estimates]
        assert days == sorted(days)

    def test_storm_density_shortens_lifetime(self):
        quiet = orbital_lifetime(450.0, max_days=30 * 365.25)
        stormy = orbital_lifetime(
            450.0, density_multiplier=5.0, max_days=30 * 365.25
        )
        assert stormy.days < quiet.days / 3.0

    def test_tumbling_shortens_lifetime(self):
        clean = orbital_lifetime(400.0)
        tumbling = orbital_lifetime(
            400.0,
            ballistic=STARLINK_BALLISTIC.with_reduced_cross_section(1.0),
        )
        assert clean.days == tumbling.days  # factor 1.0 is identity
        bigger = STARLINK_BALLISTIC
        from repro.atmosphere.drag import BallisticCoefficient

        tumbler = BallisticCoefficient(
            bigger.mass_kg, bigger.area_m2 * 4.0, bigger.drag_coefficient
        )
        assert orbital_lifetime(400.0, ballistic=tumbler).days < clean.days / 2.0

    def test_horizon_truncation(self):
        estimate = orbital_lifetime(550.0, max_days=30.0)
        assert estimate.truncated
        assert estimate.days == float("inf")

    def test_thermosphere_driven(self):
        start = Epoch.from_calendar(2024, 5, 1)
        values = [-10.0] * 200 + [-400.0] * 24 + [-10.0] * (24 * 40)
        dst = DstIndex.from_hourly(start, values)
        model = ThermosphereModel(dst)
        with_storm = orbital_lifetime(
            330.0, thermosphere=model, start_unix=start.unix, max_days=400.0
        )
        without = orbital_lifetime(330.0, max_days=400.0)
        assert with_storm.days <= without.days

    def test_rejects_bad_inputs(self):
        with pytest.raises(SimulationError):
            orbital_lifetime(190.0)  # below re-entry altitude
        with pytest.raises(SimulationError):
            orbital_lifetime(400.0, step_days=0.0)
        with pytest.raises(SimulationError):
            orbital_lifetime(400.0, density_multiplier=0.0)
