"""Unit tests for the thermosphere density model."""

import numpy as np
import pytest

from repro.atmosphere import ThermosphereModel, density_quiet_kg_m3, storm_enhancement_factor
from repro.constants import RHO_550KM_QUIET_KG_M3
from repro.errors import SimulationError
from repro.spaceweather import DstIndex
from repro.time import Epoch


class TestQuietDensity:
    def test_reference_altitude(self):
        assert density_quiet_kg_m3(550.0) == RHO_550KM_QUIET_KG_M3

    def test_exponential_falloff(self):
        # One scale height (65 km) lower = e times denser.
        ratio = density_quiet_kg_m3(485.0) / density_quiet_kg_m3(550.0)
        assert ratio == pytest.approx(np.e, rel=1e-6)

    def test_staging_orbit_much_denser(self):
        # The paper: staging orbit drag is far higher than at 550 km.
        assert density_quiet_kg_m3(350.0) / density_quiet_kg_m3(550.0) > 15.0

    def test_below_model_floor_rejected(self):
        with pytest.raises(SimulationError):
            density_quiet_kg_m3(50.0)


class TestEnhancementFactor:
    def test_quiet_is_unity(self):
        assert storm_enhancement_factor(0.0) == 1.0
        assert storm_enhancement_factor(-20.0) == 1.0

    def test_nan_is_unity(self):
        assert storm_enhancement_factor(float("nan")) == 1.0

    def test_monotone_with_intensity(self):
        assert (
            storm_enhancement_factor(-400.0)
            > storm_enhancement_factor(-112.0)
            > storm_enhancement_factor(-63.0)
            > 1.0
        )

    def test_may_2024_calibration(self):
        # ~5x drag at the -412 nT super-storm (Starlink's FCC response).
        assert storm_enhancement_factor(-412.0) == pytest.approx(5.1, abs=0.3)

    def test_paper_99th_ptile_level(self):
        assert storm_enhancement_factor(-63.0) == pytest.approx(1.45, abs=0.15)


class TestThermosphereModel:
    def _storm_dst(self):
        values = [-10.0] * 24 + [-200.0] * 6 + [-10.0] * 48
        return DstIndex.from_hourly(Epoch.from_calendar(2023, 1, 1), values)

    def test_enhancement_follows_storm(self):
        model = ThermosphereModel(self._storm_dst())
        quiet_t = Epoch.from_calendar(2023, 1, 1, 5).unix
        storm_t = Epoch.from_calendar(2023, 1, 2, 5).unix
        assert model.enhancement_at(storm_t) > model.enhancement_at(quiet_t)

    def test_cooling_lag(self):
        # Hours after the storm ends the enhancement is still elevated.
        model = ThermosphereModel(self._storm_dst())
        after_t = Epoch.from_calendar(2023, 1, 2, 12).unix  # 6 h post-storm
        assert model.enhancement_at(after_t) > 1.3

    def test_longer_storm_drives_higher_enhancement(self):
        short = [-10.0] * 24 + [-150.0] * 2 + [-10.0] * 72
        long = [-10.0] * 24 + [-150.0] * 12 + [-10.0] * 62
        m_short = ThermosphereModel(
            DstIndex.from_hourly(Epoch.from_calendar(2023, 1, 1), short)
        )
        m_long = ThermosphereModel(
            DstIndex.from_hourly(Epoch.from_calendar(2023, 1, 1), long)
        )
        peak_short = float(np.nanmax(m_short.enhancement_series.values))
        peak_long = float(np.nanmax(m_long.enhancement_series.values))
        assert peak_long > peak_short

    def test_outside_data_is_quiet(self):
        model = ThermosphereModel(self._storm_dst())
        assert model.enhancement_at(0.0) == 1.0

    def test_density_combines_profile_and_enhancement(self):
        model = ThermosphereModel(self._storm_dst())
        storm_t = Epoch.from_calendar(2023, 1, 2, 4).unix
        assert model.density_at(550.0, storm_t) > density_quiet_kg_m3(550.0)
        assert model.density_at(350.0, storm_t) > model.density_at(550.0, storm_t)

    def test_rejects_bad_lag(self):
        with pytest.raises(SimulationError):
            ThermosphereModel(self._storm_dst(), lag_hours=0.0)

    def test_empty_dst(self):
        model = ThermosphereModel(
            DstIndex.from_hourly(Epoch.from_calendar(2023, 1, 1), [])
        )
        assert model.enhancement_at(1000.0) == 1.0
