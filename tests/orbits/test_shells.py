"""Unit tests for constellation shell definitions."""

import pytest

from repro.errors import SimulationError
from repro.orbits import STARLINK_SHELLS, Shell, shell_for_altitude
from repro.orbits.shells import STAGING_ALTITUDE_KM, shells_crossed


class TestShell:
    def test_satellite_count(self):
        shell = Shell("s", 550.0, 53.0, 72, 22)
        assert shell.satellite_count == 1584

    def test_contains_altitude_within_half_width(self):
        shell = Shell("s", 550.0, 53.0, 1, 1)
        assert shell.contains_altitude(552.0)
        assert not shell.contains_altitude(553.0)

    def test_starlink_shell_1_parameters(self):
        # FCC filing: 550 km / 53 degrees / 72x22.
        s1 = STARLINK_SHELLS[0]
        assert s1.altitude_km == 550.0
        assert s1.inclination_deg == 53.0
        assert s1.satellite_count == 1584

    def test_staging_altitude_matches_paper(self):
        assert STAGING_ALTITUDE_KM == pytest.approx(350.0)


class TestShellLookup:
    def test_finds_shell(self):
        assert shell_for_altitude(550.5) is STARLINK_SHELLS[0]

    def test_gap_between_shells(self):
        # 545 km sits between shell-1 (550) and shell-2 (540).
        assert shell_for_altitude(545.0) is None

    def test_custom_half_width(self):
        assert shell_for_altitude(545.0, half_width_km=6.0) is not None


class TestShellsCrossed:
    def test_decay_through_shells(self):
        # Decaying from 555 to 535 trespasses both 550 and 540 shells.
        crossed = shells_crossed(555.0, 535.0)
        names = {s.name for s in crossed}
        assert {"shell-1", "shell-2"} <= names

    def test_no_crossing(self):
        assert shells_crossed(551.0, 550.5) == []

    def test_direction_independent(self):
        assert shells_crossed(535.0, 555.0) == shells_crossed(555.0, 535.0)

    def test_rejects_empty_shell_set(self):
        with pytest.raises(SimulationError):
            shells_crossed(555.0, 535.0, tuple())
