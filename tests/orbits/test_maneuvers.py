"""Unit tests for maneuver delta-v budgets."""

import pytest

from repro.atmosphere.density import density_quiet_kg_m3
from repro.errors import SimulationError
from repro.orbits.maneuvers import (
    circular_velocity_m_s,
    drag_makeup_delta_v_m_s_per_day,
    hohmann_delta_v_m_s,
    storm_extra_delta_v_m_s,
)


class TestCircularVelocity:
    def test_leo_velocity(self):
        assert circular_velocity_m_s(550.0) == pytest.approx(7585.0, abs=20.0)

    def test_decreases_with_altitude(self):
        assert circular_velocity_m_s(350.0) > circular_velocity_m_s(550.0)


class TestHohmann:
    def test_staging_to_operational(self):
        # 350 -> 550 km raise costs ~110 m/s.
        dv = hohmann_delta_v_m_s(350.0, 550.0)
        assert dv == pytest.approx(111.0, abs=10.0)

    def test_direction_independent(self):
        assert hohmann_delta_v_m_s(350.0, 550.0) == pytest.approx(
            hohmann_delta_v_m_s(550.0, 350.0)
        )

    def test_zero_for_same_orbit(self):
        assert hohmann_delta_v_m_s(550.0, 550.0) == pytest.approx(0.0, abs=1e-9)

    def test_monotone_in_gap(self):
        assert hohmann_delta_v_m_s(350.0, 600.0) > hohmann_delta_v_m_s(350.0, 550.0)


class TestDragMakeup:
    def test_quiet_budget_is_small(self):
        daily = drag_makeup_delta_v_m_s_per_day(550.0, density_quiet_kg_m3(550.0))
        # ~0.1 m/s/day at 550 km under the solar-max profile: tens of
        # m/s per year, well within an ion thruster's budget.
        assert 0.01 < daily < 0.3

    def test_staging_budget_much_larger(self):
        at_550 = drag_makeup_delta_v_m_s_per_day(550.0, density_quiet_kg_m3(550.0))
        at_350 = drag_makeup_delta_v_m_s_per_day(350.0, density_quiet_kg_m3(350.0))
        assert at_350 > 10.0 * at_550

    def test_scales_with_density(self):
        rho = density_quiet_kg_m3(550.0)
        assert drag_makeup_delta_v_m_s_per_day(550.0, 5 * rho) == pytest.approx(
            5 * drag_makeup_delta_v_m_s_per_day(550.0, rho)
        )

    def test_rejects_negative_density(self):
        with pytest.raises(SimulationError):
            drag_makeup_delta_v_m_s_per_day(550.0, -1.0)


class TestStormExtra:
    def test_may_2024_class_storm_budget(self):
        # A 5x enhancement for 2 days at 550 km costs well under the
        # ~110 m/s a full orbit raise takes — consistent with Starlink
        # riding out the super-storm on propulsion alone.
        extra = storm_extra_delta_v_m_s(
            550.0, density_quiet_kg_m3(550.0), enhancement=5.0, storm_days=2.0
        )
        assert 0.0 < extra < 10.0

    def test_zero_duration_costs_nothing(self):
        assert storm_extra_delta_v_m_s(
            550.0, density_quiet_kg_m3(550.0), enhancement=5.0, storm_days=0.0
        ) == 0.0

    def test_unity_enhancement_costs_nothing(self):
        assert storm_extra_delta_v_m_s(
            550.0, density_quiet_kg_m3(550.0), enhancement=1.0, storm_days=3.0
        ) == pytest.approx(0.0)

    def test_rejects_bad_inputs(self):
        with pytest.raises(SimulationError):
            storm_extra_delta_v_m_s(550.0, 1e-13, enhancement=0.5, storm_days=1.0)
        with pytest.raises(SimulationError):
            storm_extra_delta_v_m_s(550.0, 1e-13, enhancement=2.0, storm_days=-1.0)
