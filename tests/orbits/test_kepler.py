"""Unit tests for anomaly conversions and the Kepler solver."""

import math

import pytest

from repro.errors import PropagationError
from repro.orbits import (
    eccentric_from_mean,
    eccentric_from_true,
    mean_from_eccentric,
    mean_from_true,
    true_from_eccentric,
    true_from_mean,
)


class TestKeplerEquation:
    def test_circular_orbit_identity(self):
        # For e=0 all anomalies coincide.
        m = 1.234
        assert eccentric_from_mean(m, 0.0) == pytest.approx(m)
        assert true_from_mean(m, 0.0) == pytest.approx(m)

    def test_solver_satisfies_equation(self):
        m, e = 2.5, 0.3
        big_e = eccentric_from_mean(m, e)
        assert big_e - e * math.sin(big_e) == pytest.approx(m, abs=1e-10)

    def test_high_eccentricity_converges(self):
        big_e = eccentric_from_mean(0.1, 0.95)
        assert math.isfinite(big_e)
        assert big_e - 0.95 * math.sin(big_e) == pytest.approx(0.1, abs=1e-9)

    def test_rejects_hyperbolic(self):
        with pytest.raises(PropagationError):
            eccentric_from_mean(1.0, 1.1)

    def test_rejects_negative_eccentricity(self):
        with pytest.raises(PropagationError):
            eccentric_from_mean(1.0, -0.1)


class TestRoundTrips:
    @pytest.mark.parametrize("e", [0.0, 0.001, 0.1, 0.7])
    @pytest.mark.parametrize("anomaly", [0.0, 0.5, math.pi, 4.0, 6.0])
    def test_mean_eccentric_round_trip(self, e, anomaly):
        back = mean_from_eccentric(eccentric_from_mean(anomaly, e), e)
        assert back == pytest.approx(anomaly % (2 * math.pi), abs=1e-9)

    @pytest.mark.parametrize("e", [0.0, 0.01, 0.3])
    @pytest.mark.parametrize("anomaly", [0.1, 2.0, 5.5])
    def test_true_eccentric_round_trip(self, e, anomaly):
        back = true_from_eccentric(eccentric_from_true(anomaly, e), e)
        assert back == pytest.approx(anomaly, abs=1e-9)

    def test_true_mean_round_trip(self):
        nu = mean_from_true(true_from_mean(1.0, 0.2), 0.2)
        assert nu == pytest.approx(1.0, abs=1e-9)

    def test_apoapsis_anomalies_coincide(self):
        # At apoapsis (M = pi) all anomalies equal pi for any e.
        for e in (0.1, 0.5):
            assert true_from_mean(math.pi, e) == pytest.approx(math.pi, abs=1e-9)


class TestPhysicalBehaviour:
    def test_true_leads_mean_before_apoapsis(self):
        # Between periapsis and apoapsis the true anomaly runs ahead.
        assert true_from_mean(1.0, 0.3) > 1.0

    def test_true_lags_mean_after_apoapsis(self):
        assert true_from_mean(5.0, 0.3) < 5.0
