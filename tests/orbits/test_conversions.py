"""Unit tests for mean motion / altitude conversions."""

import pytest

from repro.constants import EARTH_RADIUS_KM
from repro.errors import PropagationError
from repro.orbits import (
    altitude_from_mean_motion,
    mean_motion_from_altitude,
    mean_motion_from_sma,
    orbital_period_minutes,
    sma_from_mean_motion,
)
from repro.orbits.conversions import orbital_speed_km_s


class TestKeplerThirdLaw:
    def test_starlink_altitude(self):
        # Starlink operational mean motion ~15.05 rev/day -> ~550 km.
        alt = altitude_from_mean_motion(15.05)
        assert alt == pytest.approx(551.0, abs=5.0)

    def test_geo_altitude(self):
        # One rev per sidereal day ~ 1.0027 rev/day -> ~35,786 km.
        alt = altitude_from_mean_motion(1.0027379)
        assert alt == pytest.approx(35786.0, abs=30.0)

    def test_round_trip(self):
        for alt in (350.0, 550.0, 1200.0):
            mm = mean_motion_from_altitude(alt)
            assert altitude_from_mean_motion(mm) == pytest.approx(alt, abs=1e-9)

    def test_sma_round_trip(self):
        sma = 6928.0
        assert sma_from_mean_motion(mean_motion_from_sma(sma)) == pytest.approx(sma)

    def test_higher_orbit_slower(self):
        assert mean_motion_from_altitude(600.0) < mean_motion_from_altitude(500.0)

    def test_rejects_nonpositive_mean_motion(self):
        with pytest.raises(PropagationError):
            sma_from_mean_motion(0.0)

    def test_rejects_impossible_altitude(self):
        with pytest.raises(PropagationError):
            mean_motion_from_altitude(-2 * EARTH_RADIUS_KM)


class TestDerivedQuantities:
    def test_period_of_starlink(self):
        # The paper: ~100 min per revolution at ~550 km.
        period = orbital_period_minutes(mean_motion_from_altitude(550.0))
        assert period == pytest.approx(95.6, abs=1.0)

    def test_period_rejects_nonpositive(self):
        with pytest.raises(PropagationError):
            orbital_period_minutes(-1.0)

    def test_orbital_speed_leo(self):
        speed = orbital_speed_km_s(EARTH_RADIUS_KM + 550.0)
        assert speed == pytest.approx(7.59, abs=0.05)

    def test_speed_decreases_with_altitude(self):
        assert orbital_speed_km_s(7000.0) > orbital_speed_km_s(8000.0)
