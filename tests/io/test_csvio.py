"""Unit tests for CSV codecs."""

import io

import numpy as np
import pytest

from repro.errors import TimeSeriesError
from repro.io import read_dst_csv, read_series_csv, write_dst_csv, write_series_csv
from repro.spaceweather import DstIndex
from repro.time import Epoch
from repro.timeseries import TimeSeries


def roundtrip_series(series):
    buffer = io.StringIO()
    write_series_csv(series, buffer)
    return read_series_csv(buffer.getvalue())


class TestSeriesCsv:
    def test_round_trip(self):
        series = TimeSeries(
            [Epoch.from_calendar(2023, 1, 1, h).unix for h in range(5)],
            [1.0, 2.5, -3.25, 0.0, 100.0],
        )
        back = roundtrip_series(series)
        assert len(back) == 5
        assert list(back.values) == pytest.approx(list(series.values))
        assert list(back.times) == pytest.approx(list(series.times), abs=1.0)

    def test_nan_round_trip(self):
        series = TimeSeries(
            [Epoch.from_calendar(2023, 1, 1, h).unix for h in range(3)],
            [1.0, float("nan"), 3.0],
        )
        back = roundtrip_series(series)
        assert np.isnan(back.values[1])

    def test_header_written(self):
        buffer = io.StringIO()
        write_series_csv(TimeSeries.empty(), buffer, value_name="altitude_km")
        assert buffer.getvalue() == "timestamp,altitude_km\n"

    def test_rejects_wrong_header(self):
        with pytest.raises(TimeSeriesError):
            read_series_csv("wrong,header\n")

    def test_rejects_bad_value(self):
        with pytest.raises(TimeSeriesError):
            read_series_csv("timestamp,value\n2023-01-01T00:00:00,abc\n")

    def test_rejects_bad_row(self):
        with pytest.raises(TimeSeriesError):
            read_series_csv("timestamp,value\nno-comma-here\n")

    def test_blank_lines_skipped(self):
        text = "timestamp,value\n2023-01-01T00:00:00,1.0\n\n"
        assert len(read_series_csv(text)) == 1

    def test_precision_preserved(self):
        series = TimeSeries([0.0], [1.2345678901234e-4])
        back = roundtrip_series(series)
        assert back.values[0] == series.values[0]


class TestDstCsv:
    def test_round_trip(self):
        dst = DstIndex.from_hourly(
            Epoch.from_calendar(2023, 3, 1), [-10.0, -60.0, float("nan"), -20.0]
        )
        buffer = io.StringIO()
        write_dst_csv(dst, buffer)
        back = read_dst_csv(buffer.getvalue())
        assert len(back) == 4
        assert back.min_nt() == -60.0
        assert back.missing_hours() == 1
