"""Unit tests for the DataStore local cache."""

import pytest

from repro.errors import IngestError
from repro.io import DataStore
from repro.spaceweather import DstIndex
from repro.time import Epoch
from repro.tle import SatelliteCatalog

from tests.core.helpers import record


@pytest.fixture
def store(tmp_path):
    return DataStore(tmp_path / "cache")


def small_catalog():
    catalog = SatelliteCatalog()
    for cat in (44713, 44714):
        for day in range(5):
            catalog.add(record(cat, float(day), 550.0 - day * 0.1))
    return catalog


class TestDstCache:
    def test_missing_returns_none(self, store):
        assert store.load_dst() is None

    def test_round_trip(self, store):
        dst = DstIndex.from_hourly(Epoch.from_calendar(2023, 1, 1), [-10.0, -55.0])
        store.save_dst(dst)
        back = store.load_dst()
        assert back is not None
        assert back.min_nt() == -55.0

    def test_overwrite(self, store):
        store.save_dst(DstIndex.from_hourly(Epoch.from_calendar(2023, 1, 1), [-10.0]))
        store.save_dst(DstIndex.from_hourly(Epoch.from_calendar(2023, 1, 1), [-99.0]))
        assert store.load_dst().min_nt() == -99.0


class TestCatalogNumbers:
    def test_missing_returns_none(self, store):
        assert store.load_catalog_numbers() is None

    def test_round_trip_sorted_unique(self, store):
        store.save_catalog_numbers([5, 1, 5, 3])
        assert store.load_catalog_numbers() == [1, 3, 5]

    def test_corrupt_cache_raises(self, store):
        store.save_catalog_numbers([1])
        (store.root / "catalog_numbers.txt").write_text("not-a-number\n")
        with pytest.raises(IngestError):
            store.load_catalog_numbers()


class TestHistoryCache:
    def test_missing_returns_none(self, store):
        assert store.load_history(12345) is None

    def test_round_trip(self, store):
        catalog = small_catalog()
        store.save_history(catalog.get(44713))
        back = store.load_history(44713)
        assert back is not None
        assert len(back) == 5
        assert back.altitude_series().values[0] == pytest.approx(550.0, abs=0.01)

    def test_corrupt_tle_raises(self, store):
        catalog = small_catalog()
        store.save_history(catalog.get(44713))
        path = store.root / "tles" / "44713.tle"
        text = path.read_text()
        path.write_text(text[:-2] + "9\n")  # break the final checksum
        with pytest.raises(IngestError):
            store.load_history(44713)

    def test_full_catalog_round_trip(self, store):
        catalog = small_catalog()
        store.save_catalog(catalog)
        back = store.load_catalog()
        assert back is not None
        assert back.catalog_numbers == [44713, 44714]
        assert back.total_records() == 10

    def test_load_catalog_skips_missing_histories(self, store):
        store.save_catalog(small_catalog())
        (store.root / "tles" / "44714.tle").unlink()
        back = store.load_catalog()
        assert back.catalog_numbers == [44713]


class TestIngestIntegration:
    def test_cache_feeds_pipeline(self, store, tmp_path):
        """A cache hydrates the pipeline exactly like a live fetch."""
        import numpy as np

        from repro import CosmicDance

        hours = np.arange(24 * 90)
        dst = DstIndex.from_hourly(
            Epoch.from_calendar(2023, 1, 1), -10.0 + 3.0 * np.sin(0.7 * hours)
        )
        catalog = SatelliteCatalog()
        for day in range(90):
            catalog.add(record(44713, float(day), 550.0))
        store.save_dst(dst)
        store.save_catalog(catalog)

        cd = CosmicDance()
        cd.ingest.add_dst(store.load_dst())
        cd.ingest.add_elements(store.load_catalog().all_elements())
        result = cd.run()
        assert 44713 in result.cleaned
