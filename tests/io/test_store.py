"""Unit tests for the DataStore local cache."""

import pytest

from repro.errors import IngestError
from repro.io import DataStore
from repro.spaceweather import DstIndex
from repro.time import Epoch
from repro.tle import SatelliteCatalog

from tests.core.helpers import record


@pytest.fixture
def store(tmp_path):
    return DataStore(tmp_path / "cache")


def small_catalog():
    catalog = SatelliteCatalog()
    for cat in (44713, 44714):
        for day in range(5):
            catalog.add(record(cat, float(day), 550.0 - day * 0.1))
    return catalog


class TestDstCache:
    def test_missing_returns_none(self, store):
        assert store.load_dst() is None

    def test_round_trip(self, store):
        dst = DstIndex.from_hourly(Epoch.from_calendar(2023, 1, 1), [-10.0, -55.0])
        store.save_dst(dst)
        back = store.load_dst()
        assert back is not None
        assert back.min_nt() == -55.0

    def test_overwrite(self, store):
        store.save_dst(DstIndex.from_hourly(Epoch.from_calendar(2023, 1, 1), [-10.0]))
        store.save_dst(DstIndex.from_hourly(Epoch.from_calendar(2023, 1, 1), [-99.0]))
        assert store.load_dst().min_nt() == -99.0


class TestCatalogNumbers:
    def test_missing_returns_none(self, store):
        assert store.load_catalog_numbers() is None

    def test_round_trip_sorted_unique(self, store):
        store.save_catalog_numbers([5, 1, 5, 3])
        assert store.load_catalog_numbers() == [1, 3, 5]

    def test_corrupt_cache_raises(self, store):
        store.save_catalog_numbers([1])
        (store.root / "catalog_numbers.txt").write_text("not-a-number\n")
        with pytest.raises(IngestError):
            store.load_catalog_numbers()


class TestHistoryCache:
    def test_missing_returns_none(self, store):
        assert store.load_history(12345) is None

    def test_round_trip(self, store):
        catalog = small_catalog()
        store.save_history(catalog.get(44713))
        back = store.load_history(44713)
        assert back is not None
        assert len(back) == 5
        assert back.altitude_series().values[0] == pytest.approx(550.0, abs=0.01)

    def test_corrupt_tle_raises(self, store):
        catalog = small_catalog()
        store.save_history(catalog.get(44713))
        path = store.root / "tles" / "44713.tle"
        text = path.read_text()
        path.write_text(text[:-2] + "9\n")  # break the final checksum
        with pytest.raises(IngestError):
            store.load_history(44713)

    def test_full_catalog_round_trip(self, store):
        catalog = small_catalog()
        store.save_catalog(catalog)
        back = store.load_catalog()
        assert back is not None
        assert back.catalog_numbers == [44713, 44714]
        assert back.total_records() == 10

    def test_load_catalog_skips_missing_histories(self, store):
        store.save_catalog(small_catalog())
        (store.root / "tles" / "44714.tle").unlink()
        back = store.load_catalog()
        assert back.catalog_numbers == [44713]


class TestAtomicWriteDurability:
    def test_no_tmp_left_after_save(self, store):
        store.save_dst(DstIndex.from_hourly(Epoch.from_calendar(2023, 1, 1), [-10.0]))
        assert list(store.root.rglob("*.tmp")) == []

    def test_fsync_called_before_replace(self, store, monkeypatch):
        import os as os_module

        calls = []
        real_fsync = os_module.fsync
        monkeypatch.setattr(
            "repro.io.store.os.fsync",
            lambda fd: (calls.append("fsync"), real_fsync(fd))[1],
        )
        store.save_catalog_numbers([1, 2])
        assert calls == ["fsync"]

    def test_failed_replace_cleans_tmp_and_keeps_target(self, store, monkeypatch):
        store.save_catalog_numbers([1])
        monkeypatch.setattr(
            "repro.io.store.os.replace",
            lambda src, dst: (_ for _ in ()).throw(OSError("disk on fire")),
        )
        with pytest.raises(OSError):
            store.save_catalog_numbers([2])
        monkeypatch.undo()
        assert list(store.root.rglob("*.tmp")) == []
        assert store.load_catalog_numbers() == [1]

    def test_concurrent_writers_use_unique_temp_names(self, store, monkeypatch):
        # Two writers racing on the same target must never share a temp
        # file: capture the temp names os.replace sees.
        import os as os_module

        seen = []
        real_replace = os_module.replace
        monkeypatch.setattr(
            "repro.io.store.os.replace",
            lambda src, dst: (seen.append(str(src)), real_replace(src, dst))[1],
        )
        store.save_catalog_numbers([1])
        store.save_catalog_numbers([2])
        assert len(seen) == 2
        assert seen[0] != seen[1]

    def test_stale_tmp_swept_on_init(self, tmp_path):
        root = tmp_path / "cache"
        (root / "tles").mkdir(parents=True)
        (root / "dst.csv.abc123.tmp").write_text("torn write")
        (root / "tles" / "44713.tle.xyz.tmp").write_text("torn write")
        store = DataStore(root)
        assert list(store.root.rglob("*.tmp")) == []


class TestRetryIntegration:
    def test_transient_read_errors_retried(self, store):
        from repro.robustness import RetryPolicy

        store.save_catalog_numbers([5])
        flaky = DataStore(
            store.root, retry=RetryPolicy(max_attempts=3, sleep=lambda s: None)
        )
        failures = {"left": 2}
        original = DataStore._read_text

        def flaky_read(self, path):
            if failures["left"]:
                failures["left"] -= 1
                raise OSError("transient")
            return original(self, path)

        flaky._read_text = flaky_read.__get__(flaky)
        assert flaky.load_catalog_numbers() == [5]
        assert failures["left"] == 0


class TestSalvageMode:
    def salvage_store(self, store):
        return DataStore(store.root, salvage=True)

    def test_partially_corrupt_history_salvaged_and_healed(self, store):
        catalog = small_catalog()
        store.save_history(catalog.get(44713))
        path = store.root / "tles" / "44713.tle"
        text = path.read_text()
        path.write_text(text[:-2] + "9\n")  # break the final checksum
        salvaging = self.salvage_store(store)
        history = salvaging.load_history(44713)
        assert history is not None
        assert len(history) == 4  # one record lost, four salvaged
        # Original moved aside, cache rewritten clean.
        assert (store.root / "quarantine" / "44713.tle").exists()
        assert DataStore(store.root).load_history(44713) is not None
        entries = salvaging.ledger.entries
        assert len(entries) == 1
        assert entries[0].kind == "artifact"
        assert "salvaged 4" in entries[0].reason

    def test_hopeless_history_quarantines_satellite(self, store):
        catalog = small_catalog()
        store.save_history(catalog.get(44713))
        path = store.root / "tles" / "44713.tle"
        path.write_text("utter garbage\nnothing here parses\n")
        salvaging = self.salvage_store(store)
        assert salvaging.load_history(44713) is None
        assert salvaging.ledger.satellites == [44713]
        assert (store.root / "quarantine" / "44713.tle").exists()
        assert not path.exists()

    def test_one_corrupt_file_never_discards_the_catalog(self, store):
        store.save_catalog(small_catalog())
        path = store.root / "tles" / "44713.tle"
        path.write_text("utter garbage\n")
        salvaging = self.salvage_store(store)
        back = salvaging.load_catalog()
        assert back is not None
        assert back.catalog_numbers == [44714]
        assert salvaging.ledger.satellites == [44713]

    def test_strict_mode_still_raises(self, store):
        store.save_catalog(small_catalog())
        path = store.root / "tles" / "44713.tle"
        text = path.read_text()
        path.write_text(text[:-2] + "9\n")  # break the final checksum
        with pytest.raises(IngestError):
            DataStore(store.root).load_catalog()

    def test_corrupt_dst_salvaged_to_none(self, store):
        store.save_dst(
            DstIndex.from_hourly(Epoch.from_calendar(2023, 1, 1), [-10.0] * 24)
        )
        (store.root / "dst.csv").write_text("definitely,not,a\ndst,csv,file\n")
        salvaging = self.salvage_store(store)
        assert salvaging.load_dst() is None
        assert len(salvaging.ledger) == 1
        assert (store.root / "quarantine" / "dst.csv").exists()

    def test_corrupt_number_lines_skipped(self, store):
        store.save_catalog_numbers([1, 2])
        (store.root / "catalog_numbers.txt").write_text("1\nnot-a-number\n2\n")
        salvaging = self.salvage_store(store)
        assert salvaging.load_catalog_numbers() == [1, 2]
        assert len(salvaging.ledger) == 1


class TestIngestIntegration:
    def test_cache_feeds_pipeline(self, store, tmp_path):
        """A cache hydrates the pipeline exactly like a live fetch."""
        import numpy as np

        from repro import CosmicDance

        hours = np.arange(24 * 90)
        dst = DstIndex.from_hourly(
            Epoch.from_calendar(2023, 1, 1), -10.0 + 3.0 * np.sin(0.7 * hours)
        )
        catalog = SatelliteCatalog()
        for day in range(90):
            catalog.add(record(44713, float(day), 550.0))
        store.save_dst(dst)
        store.save_catalog(catalog)

        cd = CosmicDance()
        cd.ingest.add_dst(store.load_dst())
        cd.ingest.add_elements(store.load_catalog().all_elements())
        result = cd.run()
        assert 44713 in result.cleaned
