"""Fleet-stage parallelism and stage-cache benchmark.

Times the per-satellite fleet stage (clean → detect → assess) under the
:class:`~repro.exec.serial.SerialExecutor` and a 4-worker
:class:`~repro.exec.parallel.ParallelExecutor`, plus the warm-cache
re-run, and records the measurements to ``BENCH_parallel.json`` at the
repository root.

The ≥2× speedup acceptance assertion is gated on the machine actually
having ≥4 CPUs: a process pool cannot beat serial execution on a
single-core container, and recording the honest number matters more
than the assertion passing everywhere.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro import CosmicDance, CosmicDanceConfig
from repro.core.pipeline import process_satellite, satellite_task
from repro.exec import ParallelExecutor, SerialExecutor
from repro.obs import Tracer
from repro.simulation import paper_scenario

BENCH_PATH = pathlib.Path(__file__).parent.parent / "BENCH_parallel.json"
TRACE_BENCH_PATH = pathlib.Path(__file__).parent.parent / "BENCH_trace.json"

WORKERS = 4


def fleet_tasks(total_satellites=96, seed=0):
    scenario = paper_scenario(total_satellites=total_satellites, seed=seed)
    return [satellite_task(history) for history in scenario.catalog], scenario


def timed(fn, *args, repeats=3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn(*args)
        best = min(best, time.perf_counter() - started)
    return best, result


def test_parallel_fleet_speedup(emit):
    tasks, scenario = fleet_tasks()
    config = CosmicDanceConfig()

    serial_s, serial_outcomes = timed(
        SerialExecutor().run_fleet, process_satellite, tasks, config
    )
    parallel_s, parallel_outcomes = timed(
        ParallelExecutor(WORKERS).run_fleet, process_satellite, tasks, config
    )
    assert parallel_outcomes == serial_outcomes  # parity before speed

    # Warm-cache re-run of the full pipeline: the second run() serves
    # every satellite from the memo and skips the fleet stage entirely.
    pipeline = CosmicDance()
    pipeline.ingest.add_dst(scenario.dst)
    pipeline.ingest.add_elements(scenario.catalog.all_elements())
    cold_started = time.perf_counter()
    cold = pipeline.run()
    cold_s = time.perf_counter() - cold_started
    warm_started = time.perf_counter()
    warm = pipeline.run()
    warm_s = time.perf_counter() - warm_started
    assert warm.health.cache_hits == len(tasks)
    assert warm.health.cache_misses == 0

    speedup = serial_s / parallel_s if parallel_s else float("inf")
    warm_speedup = cold_s / warm_s if warm_s else float("inf")
    payload = {
        "cpu_count": os.cpu_count(),
        "workers": WORKERS,
        "satellites": len(tasks),
        "records": sum(t.record_count for t in tasks),
        "fleet_serial_s": round(serial_s, 4),
        "fleet_parallel_s": round(parallel_s, 4),
        "fleet_speedup": round(speedup, 3),
        "run_cold_s": round(cold_s, 4),
        "run_warm_cache_s": round(warm_s, 4),
        "warm_cache_speedup": round(warm_speedup, 3),
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    emit(
        "parallel_fleet",
        "\n".join(
            [
                f"fleet stage, {len(tasks)} satellites, "
                f"{payload['records']} records ({payload['cpu_count']} CPU(s)):",
                f"  serial            {serial_s:8.3f} s",
                f"  parallel (x{WORKERS})     {parallel_s:8.3f} s   "
                f"speedup {speedup:.2f}x",
                f"  cold run          {cold_s:8.3f} s",
                f"  warm-cache run    {warm_s:8.3f} s   "
                f"speedup {warm_speedup:.2f}x",
            ]
        ),
    )

    # The warm cache always wins big — it skips the work entirely.
    assert warm_speedup >= 2.0
    # The pool only wins where there are cores to win on.
    if (os.cpu_count() or 1) >= 4:
        assert speedup >= 2.0


def test_traced_fleet_overhead(emit):
    """Tracing the fleet stage must stay under 5% wall-clock overhead.

    One span per satellite plus one codec round trip per chunk is the
    entire per-record cost, so anything above noise level here means an
    accidental hot-path allocation crept into the tracer.
    """
    tasks, _ = fleet_tasks()
    config = CosmicDanceConfig()
    executor = ParallelExecutor(WORKERS)

    untraced_s, untraced = timed(
        executor.run_fleet, process_satellite, tasks, config, repeats=5
    )
    traced_s, traced = timed(
        lambda: executor.run_fleet(
            process_satellite, tasks, config, tracer=Tracer()
        ),
        repeats=5,
    )
    assert traced == untraced  # tracing must not perturb the science

    overhead = traced_s / untraced_s - 1.0 if untraced_s else 0.0
    TRACE_BENCH_PATH.write_text(
        json.dumps(
            {
                "cpu_count": os.cpu_count(),
                "workers": WORKERS,
                "satellites": len(tasks),
                "fleet_untraced_s": round(untraced_s, 4),
                "fleet_traced_s": round(traced_s, 4),
                "overhead_pct": round(100.0 * overhead, 2),
            },
            indent=2,
        )
        + "\n"
    )
    emit(
        "traced_fleet_overhead",
        "\n".join(
            [
                f"fleet stage, {len(tasks)} satellites, x{WORKERS} workers:",
                f"  untraced          {untraced_s:8.3f} s",
                f"  traced            {traced_s:8.3f} s   "
                f"overhead {100.0 * overhead:+.2f}%",
            ]
        ),
    )
    assert overhead < 0.05
