"""Fig. 4 — altitude variations after a storm vs a quiet period.

Paper's observations reproduced in shape:
* (a) after a moderate storm, the median deviation of affected
  satellites climbs to ~5 km within 10-15 days; the 95th-ptile stays
  near ~10 km even after a month (long-term shifts),
* (b) in a quiet 15-day window there is no comparable deviation.
"""

import numpy as np

from conftest import isolated_moderate_event

from repro.core.figures import fig4_storm_vs_quiet
from repro.core.report import render_table


def test_fig4_storm_vs_quiet(benchmark, paper_run, emit):
    scenario, pipeline = paper_run
    episode = isolated_moderate_event(pipeline)

    fig = benchmark.pedantic(
        fig4_storm_vs_quiet,
        args=(pipeline.result, episode.start),
        rounds=1,
        iterations=1,
    )
    storm = fig.storm_curves
    quiet = fig.quiet_curves
    assert quiet is not None, "the window must contain a quiet 15-day stretch"

    rows = []
    for day in (0, 5, 10, 15, 20, 25, 30):
        idx = int(day)
        quiet_value = (
            f"{quiet.median_curve[idx]:.2f}" if day <= 15 else "-"
        )
        rows.append(
            (
                day,
                f"{storm.median_curve[idx]:.2f}",
                f"{storm.p95_curve[idx]:.2f}",
                quiet_value,
            )
        )
    emit(
        "fig4_storm_vs_quiet",
        render_table(
            f"Fig. 4: deviation below long-term median after the "
            f"{episode.start.isoformat()[:10]} storm ({episode.peak_nt:.0f} nT, "
            f"{storm.satellite_count} affected satellites) vs quiet window "
            f"({quiet.satellite_count} satellites). Paper: median ~5 km by "
            "day 10-15; quiet flat.",
            ("day", "storm median km", "storm p95 km", "quiet median km"),
            rows,
        ),
    )

    storm_peak = float(np.nanmax(storm.median_curve))
    quiet_peak = float(np.nanmax(np.abs(quiet.median_curve)))
    assert storm_peak > 2.0, "affected fleet must sag by kilometres"
    assert quiet_peak < 1.0, "quiet fleet stays on station"
    assert storm_peak > 3.0 * quiet_peak, "storm response dominates quiet noise"
    # The median deviation peaks mid-window, not at the edges.
    peak_day = float(storm.grid_days[int(np.nanargmax(storm.median_curve))])
    assert 3.0 <= peak_day <= 27.0
