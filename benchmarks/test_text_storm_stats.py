"""§4 text statistics — the storm-hour totals and percentile markers the
paper quotes in prose rather than in a figure."""

from repro.core.report import render_table
from repro.spaceweather import StormLevel, detect_episodes, duration_stats


def compute_text_stats(dst, event_percentile):
    threshold = dst.intensity_percentile(event_percentile)
    episodes = detect_episodes(dst, threshold)
    return threshold, duration_stats(episodes), dst.level_hour_counts()


def test_text_storm_stats(benchmark, paper_run, emit):
    scenario, pipeline = paper_run
    dst = scenario.dst.slice(scenario.start.add_days(61), None)

    threshold, stats, counts = benchmark.pedantic(
        compute_text_stats,
        args=(dst, pipeline.config.event_percentile),
        rounds=3,
        iterations=1,
    )

    emit(
        "text_storm_stats",
        render_table(
            "Paper §4-§5 prose statistics",
            ("metric", "value", "paper"),
            [
                ("99th-ptile intensity", f"{threshold:.1f} nT", "-63 nT"),
                ("mild storm hours", counts[StormLevel.MINOR], "720"),
                ("moderate storm hours", counts[StormLevel.MODERATE], "74"),
                ("severe storm hours", counts[StormLevel.SEVERE], "3"),
                ("extreme storm hours", counts[StormLevel.EXTREME], "0"),
                (
                    ">99th-ptile episode median duration",
                    f"{stats.median_hours:.1f} h",
                    "9 h",
                ),
                (">99th-ptile episode count", stats.count, "-"),
            ],
        ),
    )

    assert -85.0 < threshold < -50.0
    assert 2.0 <= stats.median_hours <= 16.0, "median near the paper's 9 h split"
    assert counts[StormLevel.EXTREME] == 0
