"""Extension bench — the storm impact ledger over the paper window.

Rolls every happens-closely-after relation and window statistic up per
solar event, ranking the window's storms by measured fleet impact —
"useful insights in aggregate", as the paper's introduction puts it.
"""

from repro.core.report import render_table


def test_ext_storm_ledger(benchmark, paper_run, emit):
    scenario, pipeline = paper_run
    ledger = benchmark.pedantic(pipeline.storm_impacts, rounds=1, iterations=1)
    assert ledger

    emit(
        "ext_storm_ledger",
        render_table(
            "Extension: storm impact ledger (top 12 of "
            f"{len(ledger)} episodes, by impact score)",
            ("storm", "peak nT", "hours", "events", "sats", "alt p95 km",
             "alt max km", "drag x"),
            [
                (
                    impact.episode.start.isoformat()[:10],
                    f"{impact.episode.peak_nt:.0f}",
                    impact.episode.duration_hours,
                    impact.drag_spikes + impact.decay_onsets,
                    impact.satellites_with_events,
                    f"{impact.p95_altitude_change_km:.1f}",
                    f"{impact.max_altitude_change_km:.1f}",
                    f"{impact.median_drag_ratio:.2f}",
                )
                for impact in ledger[:12]
            ],
        ),
    )

    # Deep storms must populate the top of the ledger: the mean peak
    # intensity of the top quartile is deeper than the bottom quartile.
    quartile = max(1, len(ledger) // 4)
    top = sum(i.episode.peak_nt for i in ledger[:quartile]) / quartile
    bottom = sum(i.episode.peak_nt for i in ledger[-quartile:]) / quartile
    assert top < bottom, "impact ranking should correlate with intensity"
