"""Fig. 2 — distribution of storm durations per intensity category.

Paper's observations reproduced in shape:
* the lone severe storm lasted 3 contiguous hours,
* moderate storms: median ~3 h, 95th ~15.8 h, max 19 h,
* mild storms: median ~3 h, 95th ~17 h, max 29 h — a longer, denser
  tail than moderate.
"""

from repro.core.figures import fig2_storm_durations
from repro.core.report import render_table
from repro.spaceweather import StormLevel


def test_fig2_storm_durations(benchmark, paper_run, emit):
    scenario, pipeline = paper_run
    dst = scenario.dst.slice(scenario.start.add_days(61), None)

    stats = benchmark.pedantic(
        fig2_storm_durations, args=(dst,), rounds=3, iterations=1
    )

    emit(
        "fig2_storm_durations",
        render_table(
            "Fig. 2: storm duration distribution per category "
            "(paper: severe 3 h; moderate median ~3/max 19 h; mild median ~3/max 29 h)",
            ("category", "episodes", "median h", "p95 h", "p99 h", "max h"),
            [
                (
                    level.name.lower(),
                    s.count,
                    f"{s.median_hours:.1f}",
                    f"{s.p95_hours:.1f}",
                    f"{s.p99_hours:.1f}",
                    f"{s.max_hours:.0f}",
                )
                for level, s in stats.items()
                if s.count
            ],
        ),
    )

    severe = stats[StormLevel.SEVERE]
    assert severe.count >= 1
    assert severe.max_hours <= 6.0, "the severe storm is a short, isolated event"
    mild = stats[StormLevel.MINOR]
    moderate = stats[StormLevel.MODERATE]
    assert mild.count > moderate.count, "mild storms are far more common"
    assert mild.max_hours > moderate.median_hours
    assert moderate.median_hours <= 8.0
