"""Fig. 10 — CDF of TLE-implied altitudes before and after cleaning.

Paper's observations reproduced in shape:
* before cleaning the CDF has a long error tail reaching ~40,000 km,
* after the 650 km cut (plus orbit-raising removal) the bulk sits at
  ~550 km with a small de-orbiting population below 500 km.
"""

import numpy as np

from repro.core.figures import fig10_cleaning_cdfs
from repro.core.report import render_cdf


def compute_fig10(result, catalog):
    raw_altitudes = np.array([e.altitude_km for e in catalog.all_elements()])
    return fig10_cleaning_cdfs(result, raw_altitudes)


def test_fig10_cleaning(benchmark, paper_run, emit):
    scenario, pipeline = paper_run
    fig = benchmark.pedantic(
        compute_fig10,
        args=(pipeline.result, scenario.catalog),
        rounds=1,
        iterations=1,
    )
    raw_cdf = fig.raw_cdf
    cleaned_cdf = fig.cleaned_cdf
    report = pipeline.result.cleaning_report

    parts = [
        render_cdf(
            "Fig. 10(a): altitudes in all TLEs before cleaning. "
            "Paper: long tail to ~40,000 km.",
            raw_cdf,
            unit=" km",
            probs=(0.05, 0.50, 0.95, 0.99, 0.995, 0.999, 1.0),
        ),
        render_cdf(
            "Fig. 10(b): after removing gross errors and orbit raising. "
            "Paper: bulk at ~550 km, some de-orbiters below 500 km.",
            cleaned_cdf,
            unit=" km",
            probs=(0.001, 0.01, 0.05, 0.25, 0.50, 0.95, 1.0),
        ),
    ]
    emit("fig10_cleaning", "\n\n".join(parts))

    # The raw tail reaches tens of thousands of km...
    assert raw_cdf.quantile(1.0) > 10000.0
    # ...but is a tiny fraction of records.
    assert raw_cdf.quantile(0.99) < 650.0
    # After cleaning everything is in the operational range.
    assert cleaned_cdf.quantile(1.0) <= 650.0
    assert 500.0 < cleaned_cdf.quantile(0.5) < 560.0
    # A de-orbiting population exists below 500 km.
    assert cleaned_cdf.prob_at(500.0) > 0.0
    assert report.gross_errors > 0
