"""Ablation A3 — the happens-closely-after association window.

The relation is only credible for short lags (§3's "Limitations":
trajectory changes can also come from collision avoidance).  This
ablation sweeps the window: a tiny window misses slow-onset decays, an
oversized one associates unrelated events — the association count keeps
climbing instead of saturating.
"""

from repro.core.config import CosmicDanceConfig
from repro.core.relations import associate
from repro.core.report import render_table


def sweep_window(pipeline, windows_h):
    episodes = pipeline.result.storm_episodes
    events = pipeline.result.trajectory_events
    outcomes = []
    for window_h in windows_h:
        config = CosmicDanceConfig(association_window_hours=window_h)
        pairs = associate(episodes, events, config)
        outcomes.append((window_h, len(pairs)))
    return outcomes


def test_ablation_association_window(benchmark, paper_run, emit):
    scenario, pipeline = paper_run
    windows = (6.0, 24.0, 72.0, 168.0, 720.0)
    outcomes = benchmark.pedantic(
        sweep_window, args=(pipeline, windows), rounds=1, iterations=1
    )

    emit(
        "ablation_association_window",
        render_table(
            "Ablation A3: association window vs happens-closely-after pairs "
            "(default 72 h)",
            ("window h", "associations"),
            [(w, n) for w, n in outcomes],
        ),
    )

    counts = dict(outcomes)
    # Monotone by construction.
    values = [counts[w] for w in windows]
    assert values == sorted(values)
    # A 72 h window already captures most short-lag structure: widening
    # to a week adds comparatively few pairs.
    assert counts[72.0] > 0
    added_by_week = counts[168.0] - counts[72.0]
    added_by_3days = counts[72.0] - counts[24.0]
    assert added_by_week <= max(3, 2 * max(1, added_by_3days))
