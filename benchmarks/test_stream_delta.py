"""Streaming delta-efficiency benchmark.

Measures what the delta-aware planner buys on the warm path: after a
full replay of the paper fleet, one new TLE chunk must re-run exactly
one (satellite, fleet) pair — everything else is a StageMemo hit — and
the refresh must cost a small fraction of the cold run.  Also times the
per-chunk hot path (ingest + online detection + alerting), which is the
monitor's steady-state cost.  Measurements go to ``BENCH_stream.json``
at the repository root.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.exec import result_digest
from repro.simulation import paper_scenario
from repro.stream import FeedChunk, StreamMonitor, split_feed
from repro.tle.elements import MeanElements

BENCH_PATH = pathlib.Path(__file__).parent.parent / "BENCH_stream.json"

SATELLITES = 72
CHUNK_HOURS = 24.0


def bumped(element: MeanElements) -> MeanElements:
    """A genuinely new record for the same satellite, one day later."""
    from dataclasses import replace

    return replace(element, epoch=element.epoch.add_days(1.0))


def test_stream_delta_efficiency(emit):
    scenario = paper_scenario(total_satellites=SATELLITES, seed=0)
    chunks = split_feed(scenario.dst, scenario.catalog, chunk_hours=CHUNK_HOURS)

    monitor = StreamMonitor()
    started = time.perf_counter()
    for chunk in chunks:
        monitor.offer(chunk)
    hot_s = time.perf_counter() - started
    hot_path_ms = 1000.0 * (hot_s / max(1, len(chunks)))
    started = time.perf_counter()
    cold = monitor.refresh()
    cold_s = time.perf_counter() - started
    replay_s = hot_s + cold_s
    cold_digest = result_digest(cold.result)

    # Warm refresh with nothing new: the plan must be empty and the run
    # must be pure cache service.
    memo = monitor.pipeline.memo
    hits0, misses0 = memo.hits, memo.misses
    started = time.perf_counter()
    noop = monitor.refresh()
    noop_s = time.perf_counter() - started
    assert noop.plan.dirty == ()
    assert not noop.plan.any_dirty
    assert memo.misses == misses0
    assert result_digest(noop.result) == cold_digest

    # One new TLE for one satellite: exactly one dirty pair re-runs.
    target = sorted(scenario.catalog.catalog_numbers)[0]
    last = max(scenario.catalog.get(target), key=lambda e: e.epoch.unix)
    monitor.offer(FeedChunk.of_elements([bumped(last)]))
    hits1, misses1 = memo.hits, memo.misses
    started = time.perf_counter()
    delta_refresh = monitor.refresh()
    delta_s = time.perf_counter() - started
    dirty_misses = memo.misses - misses1
    clean_hits = memo.hits - hits1

    assert delta_refresh.plan.dirty == (target,)
    assert len(delta_refresh.plan.clean) == SATELLITES - 1
    assert dirty_misses == len(delta_refresh.plan.dirty) == 1
    assert clean_hits == SATELLITES - 1

    payload = {
        "cpu_count": os.cpu_count(),
        "satellites": SATELLITES,
        "chunk_hours": CHUNK_HOURS,
        "chunks": len(chunks),
        "hot_path_total_s": round(hot_s, 4),
        "cold_refresh_s": round(cold_s, 4),
        "replay_total_s": round(replay_s, 4),
        "hot_path_per_chunk_ms": round(hot_path_ms, 4),
        "alerts_emitted": len(monitor.alerts.emitted),
        "noop_refresh_s": round(noop_s, 4),
        "delta_refresh_s": round(delta_s, 4),
        "delta_dirty_pairs": dirty_misses,
        "delta_memo_hits": clean_hits,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    emit(
        "stream_delta",
        "\n".join(
            [
                f"streaming over {SATELLITES} satellites, "
                f"{len(chunks)} chunks of {CHUNK_HOURS:g} h:",
                f"  hot path total      {hot_s:8.3f} s",
                f"  cold refresh        {cold_s:8.3f} s",
                f"  hot path per chunk  {hot_path_ms:8.3f} ms",
                f"  no-op refresh       {noop_s:8.3f} s",
                f"  1-dirty refresh     {delta_s:8.3f} s   "
                f"({dirty_misses} recompute, {clean_hits} memo hits)",
                f"  alerts emitted      {len(monitor.alerts.emitted):5d}",
            ]
        ),
    )
