"""Scenario calibration gate.

The whole reproduction hinges on the simulated datasets keeping the
paper's statistical structure (DESIGN.md §2).  This bench runs the
calibration validator so drift fails the benchmark suite loudly.
"""

from repro.core.report import render_table
from repro.simulation.validation import validate_paper_scenario


def test_calibration(benchmark, paper_run, emit):
    scenario, pipeline = paper_run
    report = benchmark.pedantic(
        validate_paper_scenario, args=(scenario,), rounds=1, iterations=1
    )

    emit(
        "calibration",
        render_table(
            f"Scenario calibration vs paper targets ({report.scenario_name})",
            ("check", "target", "measured", "ok"),
            [
                (c.name, c.target, f"{c.measured:.2f}", "yes" if c.ok else "NO")
                for c in report.checks
            ],
        ),
    )

    assert report.ok, f"calibration drift: {report.failures()}"
