"""Fig. 7 — effect of the May 2024 super-storm.

Paper's observations reproduced in shape:
* atmospheric drag rose up to ~5x on the storm days,
* the number of tracked satellites stayed essentially constant (no
  satellite loss, thanks to the operator's mitigations),
* no drastic altitude change followed.
"""

import numpy as np

from repro.core.report import render_table
from repro.time import Epoch


def compute_fig7(pipeline):
    start = Epoch.from_calendar(2024, 5, 1)
    end = Epoch.from_calendar(2024, 5, 31)
    rows = pipeline.fleet_drag(start, end)
    storm_day = Epoch.from_calendar(2024, 5, 10, 17)
    curves = pipeline.post_event_curves(
        storm_day, window_days=15.0, affected_only=False
    )
    return rows, curves


def test_fig7_may2024_superstorm(benchmark, may_run, emit):
    scenario, pipeline = may_run
    rows, curves = benchmark.pedantic(
        compute_fig7, args=(pipeline,), rounds=1, iterations=1
    )

    emit(
        "fig7_may2024_superstorm",
        render_table(
            "Fig. 7: May 2024 super-storm (paper: ~5x drag, constant "
            "tracked count, no drastic altitude change)",
            ("day", "min Dst nT", "median B*", "mean B*", "p95 B*", "tracked"),
            [
                (
                    r.day.isoformat()[:10],
                    f"{r.min_dst_nt:.0f}",
                    f"{r.median_bstar:.2e}",
                    f"{r.mean_bstar:.2e}",
                    f"{r.p95_bstar:.2e}",
                    r.tracked_satellites,
                )
                for r in rows
            ],
        ),
    )

    finite_rows = [r for r in rows if np.isfinite(r.median_bstar)]
    quiet_median = float(np.median([r.median_bstar for r in finite_rows[:8]]))
    peak_median = max(r.median_bstar for r in finite_rows)
    multiplier = peak_median / quiet_median
    assert 2.5 < multiplier < 9.0, f"drag multiplier {multiplier:.1f} vs paper's ~5x"

    # Peak Dst reached the super-storm level.
    assert min(r.min_dst_nt for r in rows) < -380.0

    # No satellite loss: tracked count stays within a few satellites.
    before = np.mean([r.tracked_satellites for r in rows[2:9]])
    after = np.mean([r.tracked_satellites for r in rows[-5:]])
    assert after >= before - 2

    # No drastic altitude change (attentive ops + reduced cross-section).
    assert float(np.nanmax(curves.median_curve)) < 3.0
