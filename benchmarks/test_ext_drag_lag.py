"""Extension bench — recovering the storm->drag lag from data.

The happens-closely-after relation is qualitative in the paper; with a
lagged cross-correlation between geomagnetic intensity and fleet drag
we can quantify it.  The thermosphere heats within hours of a storm and
cools over ~half a day, so the fleet's fitted B* should track storm
intensity with a small positive lag — which this bench recovers from
the May-2024 scenario's TLE record alone.
"""

from repro.core.analysis import fleet_bstar_hourly
from repro.core.report import render_table
from repro.time import Epoch
from repro.timeseries import lag_correlation


def compute_lag(pipeline):
    start = Epoch.from_calendar(2024, 5, 1)
    end = Epoch.from_calendar(2024, 5, 25)
    intensity = pipeline.result.dst.slice(start, end).series.map(lambda v: -v)
    bstar = fleet_bstar_hourly(pipeline.result.cleaned, start, end)
    return lag_correlation(
        intensity, bstar, max_lag_s=48 * 3600.0, step_s=3600.0
    )


def test_ext_drag_lag(benchmark, may_run, emit):
    scenario, pipeline = may_run
    result = benchmark.pedantic(compute_lag, args=(pipeline,), rounds=1, iterations=1)

    rows = [
        (f"{lag / 3600.0:.0f}", f"{corr:.3f}")
        for lag, corr in zip(
            result.lags_s[::4].tolist(), result.correlations[::4].tolist()
        )
    ]
    emit(
        "ext_drag_lag",
        render_table(
            "Extension: cross-correlation of storm intensity (-Dst) vs "
            f"fleet median B*. Best lag {result.best_lag_s / 3600.0:.0f} h "
            f"(r={result.best_correlation:.3f})",
            ("lag h", "correlation"),
            rows,
        ),
    )

    # The drag response is strong and *follows* the storm by hours —
    # the quantitative form of happens-closely-after.
    assert result.best_correlation > 0.6
    assert 0.0 <= result.best_lag_s <= 24 * 3600.0
