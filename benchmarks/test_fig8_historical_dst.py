"""Fig. 8 — ~50 years of Dst indices with the famous super-storms.

The paper's appendix plots the Dst series since the mid-1970s and
annotates eight named storms (1989 Quebec -589 nT ... May 2024
-412 nT).  This bench regenerates the reconstruction and verifies every
named storm is visible at roughly its recorded depth.
"""

from repro.core.report import render_table
from repro.simulation.historical import FAMOUS_STORMS, historical_dst


def compute_fig8():
    # Generate the decades that contain the famous storms (generating
    # all 50 years is supported but takes ~10x longer than this bench
    # needs; the per-year model is identical).
    return {
        (1988, 1992): historical_dst(1988, 1992, seed=7),
        (1999, 2004): historical_dst(1999, 2004, seed=7),
        (2024, 2025): historical_dst(2024, 2025, seed=7),
    }


def test_fig8_historical_dst(benchmark, emit):
    windows = benchmark.pedantic(compute_fig8, rounds=1, iterations=1)

    rows = []
    for storm in FAMOUS_STORMS:
        for (y0, y1), dst in windows.items():
            if y0 <= storm.onset.year < y1:
                around = dst.slice(storm.onset.add_days(-1), storm.onset.add_days(3))
                observed = around.min_nt()
                rows.append(
                    (
                        storm.name,
                        storm.onset.isoformat()[:10],
                        f"{storm.peak_nt:.0f}",
                        f"{observed:.0f}",
                    )
                )
                assert observed <= storm.peak_nt * 0.9, storm.name
                break

    emit(
        "fig8_historical_dst",
        render_table(
            "Fig. 8: famous geomagnetic storms in the 50-year reconstruction",
            ("storm", "date", "recorded nT", "reconstructed nT"),
            rows,
        ),
    )
    assert len(rows) == len(FAMOUS_STORMS)
