"""Fig. 6 — influence of storm duration on altitude and drag changes.

The paper splits storms above the 99th-ptile intensity threshold at the
median episode duration (9 hours in their data): longer storms produce
a significantly longer and denser altitude-change tail, and larger drag
increases.
"""

from repro.core.figures import fig6_duration_influence
from repro.core.report import render_cdf, render_table


def test_fig6_duration_influence(benchmark, paper_run, emit):
    scenario, pipeline = paper_run
    fig = benchmark.pedantic(
        fig6_duration_influence, args=(pipeline.result,), rounds=1, iterations=1
    )
    median_duration = fig.median_duration_hours
    short_alt = fig.short_altitude_cdf
    long_alt = fig.long_altitude_cdf
    short_drag = fig.short_drag_cdf
    long_drag = fig.long_drag_cdf

    parts = [
        render_table(
            "Fig. 6 split point (paper: 9 h median duration of >99th-ptile storms)",
            ("metric", "value"),
            [("median episode duration", f"{median_duration:.1f} h")],
        ),
        render_cdf(
            f"Fig. 6(a): altitude change after storms shorter than "
            f"{median_duration:.0f} h",
            short_alt,
            unit=" km",
        ),
        render_cdf(
            f"Fig. 6(b): altitude change after storms of {median_duration:.0f} h "
            "or longer. Paper: significantly longer, denser tail.",
            long_alt,
            unit=" km",
        ),
        render_cdf(
            "Fig. 6(c): B* drag ratio after the longer storms",
            long_drag,
            unit="x",
        ),
    ]
    emit("fig6_duration_influence", "\n\n".join(parts))

    # Longer storms push the distribution out at the tail.
    assert long_alt.quantile(0.95) >= short_alt.quantile(0.95)
    assert long_alt.quantile(1.0) >= short_alt.quantile(1.0)
    # ... and drive more drag.
    assert long_drag.quantile(0.75) >= short_drag.quantile(0.75)
