"""Fig. 5 — influence of storm intensity on altitude and drag changes.

Paper's observations reproduced in shape:
* (a) below the 80th-ptile (quiet epochs) altitude variations stay
  below ~10 km,
* (b) above the 95th-ptile a small tail (at most ~1% of satellites)
  sees 10s of km, up to ~163 km — shell-trespassing shifts,
* (c) intense storms also fatten the drag-change distribution.
"""

from repro.core.ascii_chart import render_cdf_chart
from repro.core.figures import fig5_intensity_influence
from repro.core.report import render_cdf


def test_fig5_intensity_influence(benchmark, paper_run, emit):
    scenario, pipeline = paper_run
    fig = benchmark.pedantic(
        fig5_intensity_influence, args=(pipeline.result,), rounds=1, iterations=1
    )
    quiet_alt = fig.quiet_altitude_cdf
    storm_alt = fig.storm_altitude_cdf
    quiet_drag = fig.quiet_drag_cdf
    storm_drag = fig.storm_drag_cdf

    parts = [
        render_cdf(
            "Fig. 5(a): altitude change, quiet epochs (<80th-ptile). "
            "Paper: below 10 km.",
            quiet_alt,
            unit=" km",
        ),
        render_cdf(
            "Fig. 5(b): altitude change after >95th-ptile storms. "
            "Paper: <=1% reach 10s of km, up to ~163 km.",
            storm_alt,
            unit=" km",
        ),
        render_cdf(
            "Fig. 5(c): B* drag ratio after >95th-ptile storms "
            "(vs pre-event baseline).",
            storm_drag,
            unit="x",
        ),
        render_cdf_chart(
            storm_alt,
            title="Fig. 5(b) chart: CDF of post-storm altitude change (log10 km)",
            log_x=True,
        ),
    ]
    emit("fig5_intensity_influence", "\n\n".join(parts))

    # Quiet epochs: bounded variations.
    assert quiet_alt.quantile(0.99) < 10.0
    # Storm epochs: a small but real extreme tail.
    assert storm_alt.quantile(0.99) > quiet_alt.quantile(0.99)
    assert storm_alt.quantile(1.0) > 30.0, "tail must reach 10s of km"
    assert storm_alt.quantile(0.95) < 15.0, "the extreme tail is ~1%, not the bulk"
    # Drag responds to intensity.
    assert storm_drag.quantile(0.5) > quiet_drag.quantile(0.5)
    assert storm_drag.quantile(0.95) > 1.5
