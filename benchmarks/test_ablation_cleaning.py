"""Ablation A2 — the 650 km gross-error cut (§A.2).

Without the cut, tracking-error TLEs with implied altitudes up to
~40,000 km survive into the analyses and wreck altitude statistics;
with it, per-satellite altitude series match the operational range.
"""

import numpy as np

from repro.core.cleaning import clean_catalog
from repro.core.config import CosmicDanceConfig
from repro.core.report import render_table


def sweep_cut(catalog, cuts):
    outcomes = []
    for cut in cuts:
        config = CosmicDanceConfig(max_valid_altitude_km=cut)
        cleaned, report = clean_catalog(catalog, config)
        altitudes = np.array(
            [e.altitude_km for h in cleaned.values() for e in h.elements]
        )
        outcomes.append(
            (
                cut,
                report.gross_errors,
                float(np.max(altitudes)),
                float(np.std(altitudes)),
            )
        )
    return outcomes


def test_ablation_cleaning(benchmark, paper_run, emit):
    scenario, pipeline = paper_run
    cuts = (650.0, 1000.0, 50000.0)
    outcomes = benchmark.pedantic(
        sweep_cut, args=(scenario.catalog, cuts), rounds=1, iterations=1
    )

    emit(
        "ablation_cleaning",
        render_table(
            "Ablation A2: gross-error altitude cut (paper uses 650 km)",
            ("cut km", "records removed", "max kept alt km", "alt stddev km"),
            [
                (cut, removed, f"{max_alt:.0f}", f"{std:.1f}")
                for cut, removed, max_alt, std in outcomes
            ],
        ),
    )

    by_cut = {cut: (removed, max_alt, std) for cut, removed, max_alt, std in outcomes}
    # No cut (50,000 km) keeps the error tail...
    assert by_cut[50000.0][1] > 10000.0
    # ...which inflates the altitude spread by orders of magnitude.
    assert by_cut[50000.0][2] > 20.0 * by_cut[650.0][2]
    # The paper's cut bounds everything to the operational range.
    assert by_cut[650.0][1] <= 650.0
