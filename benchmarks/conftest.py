"""Shared fixtures for the figure-reproduction benchmarks.

Each benchmark regenerates one of the paper's figures (see DESIGN.md's
experiment index): it times the analysis step with pytest-benchmark and
emits the figure's rows/series as text.  Emitted tables are written to
``benchmarks/results/<name>.txt`` and echoed into the terminal summary,
so a plain ``pytest benchmarks/ --benchmark-only`` run shows the data
the paper plots.

The underlying scenario is simulated (see DESIGN.md §2 for the data
substitution): absolute numbers differ from the paper's testbed, but
the comparisons each figure makes — who wins, by what factor, where the
crossovers sit — are expected to hold.
"""

from __future__ import annotations

import pathlib

import pytest

from repro import CosmicDance
from repro.simulation import may2024_scenario, paper_scenario

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

_emitted: list[tuple[str, str]] = []


@pytest.fixture(scope="session")
def emit():
    """Record a rendered figure table: saved to results/ and echoed."""

    def _emit(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        _emitted.append((name, text))

    return _emit


def pytest_terminal_summary(terminalreporter):
    if not _emitted:
        return
    terminalreporter.section("figure reproductions")
    for name, text in _emitted:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"--- {name} " + "-" * max(0, 60 - len(name)))
        for line in text.splitlines():
            terminalreporter.write_line(line)


@pytest.fixture(scope="session")
def paper_run():
    """The paper-window scenario, ingested and pipelined once."""
    scenario = paper_scenario(total_satellites=72, seed=0)
    pipeline = CosmicDance()
    pipeline.ingest.add_dst(scenario.dst)
    pipeline.ingest.add_elements(scenario.catalog.all_elements())
    pipeline.run()
    return scenario, pipeline


@pytest.fixture(scope="session")
def may_run():
    """The May 2024 super-storm scenario, ingested and pipelined once."""
    scenario = may2024_scenario(total_satellites=120, seed=1)
    pipeline = CosmicDance()
    pipeline.ingest.add_dst(scenario.dst)
    pipeline.ingest.add_elements(scenario.catalog.all_elements())
    pipeline.run()
    return scenario, pipeline


def isolated_moderate_event(pipeline, *, min_quiet_days: float = 20.0):
    """A moderate storm with no other event in the preceding weeks.

    The paper 'picked at random a high-intensity solar event
    (intensity: -112 nT)' for Fig. 4(a); an event too close to an
    earlier storm would start with the fleet already displaced, which
    the 5 km rule would then exclude.
    """
    episodes = pipeline.result.storm_episodes
    moderate = [e for e in episodes if e.peak_nt <= -100.0]
    for candidate in moderate:
        gap_ok = all(
            other.end.unix <= candidate.start.unix - min_quiet_days * 86400.0
            or other.start.unix >= candidate.start.unix
            for other in episodes
            if other is not candidate
        )
        if gap_ok:
            return candidate
    return moderate[0] if moderate else episodes[0]
