"""Substrate micro-benchmarks.

Not figure reproductions — these track the throughput of the hot paths
the pipeline leans on (SGP4 stepping, TLE parse/format, storm
detection, cleaning), so performance regressions in the substrates are
visible alongside the scientific benches.
"""

import numpy as np
import pytest

from repro.sgp4 import SGP4
from repro.spaceweather import DstIndex, detect_episodes
from repro.time import Epoch
from repro.tle import format_tle, parse_tle

SGP4_LINE1 = "1 88888U          80275.98708465  .00073094  13844-3  66816-4 0    87"
SGP4_LINE2 = "2 88888  72.8435 115.9689 0086731  52.6988 110.5714 16.05824518  1058"


def test_perf_sgp4_propagation(benchmark):
    propagator = SGP4(parse_tle(SGP4_LINE1, SGP4_LINE2))
    offsets = [float(m) for m in range(0, 1000)]

    def run():
        return [propagator.propagate_minutes(m) for m in offsets]

    results = benchmark(run)
    assert len(results) == 1000


def test_perf_tle_parse(benchmark):
    def run():
        return [parse_tle(SGP4_LINE1, SGP4_LINE2) for _ in range(200)]

    results = benchmark(run)
    assert results[0].catalog_number == 88888


def test_perf_tle_format(benchmark):
    elements = parse_tle(SGP4_LINE1, SGP4_LINE2)

    def run():
        return [format_tle(elements) for _ in range(200)]

    results = benchmark(run)
    assert results[0][0] == SGP4_LINE1


def test_perf_storm_detection(benchmark):
    rng = np.random.default_rng(0)
    hours = 5 * 365 * 24
    values = -11.0 + 7.0 * rng.standard_normal(hours)
    values[40000:40040] -= 180.0
    dst = DstIndex.from_hourly(Epoch.from_calendar(2019, 1, 1), values)

    episodes = benchmark(detect_episodes, dst, -60.0)
    assert episodes


def test_perf_cleaning(benchmark, paper_run):
    from repro.core.cleaning import clean_catalog

    scenario, pipeline = paper_run

    cleaned, report = benchmark.pedantic(
        clean_catalog, args=(scenario.catalog,), rounds=2, iterations=1
    )
    assert report.kept > 0
