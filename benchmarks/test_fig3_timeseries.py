"""Fig. 3 — time series of Dst, drag and altitude for affected satellites.

The paper cherry-picks 3 satellites whose drag spikes and decay onsets
follow storms.  This bench picks the satellites with the strongest
storm-associated trajectory events, builds their merged timelines, and
verifies the causal ordering the figure illustrates: storm -> drag
spike -> altitude drop.
"""

import numpy as np

from repro.core.ascii_chart import render_line_chart
from repro.core.figures import fig3_select_satellites, fig3_timelines
from repro.core.report import render_table


def test_fig3_timeseries(benchmark, paper_run, emit):
    scenario, pipeline = paper_run
    chosen = fig3_select_satellites(pipeline.result)
    assert chosen, "the window must contain storm-affected satellites"

    timelines = benchmark.pedantic(
        fig3_timelines, args=(pipeline.result, chosen), rounds=3, iterations=1
    )

    rows = []
    for timeline in timelines:
        altitude = timeline.altitude
        bstar = timeline.bstar
        rows.append(
            (
                timeline.catalog_number,
                f"{altitude.max():.1f}",
                f"{altitude.min():.1f}",
                f"{altitude.max() - altitude.min():.1f}",
                f"{bstar.median():.2e}",
                f"{bstar.max():.2e}",
            )
        )
    deepest = timelines[0]
    start_unix = float(deepest.altitude.times[0])
    chart = render_line_chart(
        (deepest.altitude.times - start_unix) / 86400.0,
        deepest.altitude.values,
        title=(
            f"Fig. 3 (chart): altitude of satellite "
            f"{deepest.catalog_number} [km] vs days"
        ),
    )
    emit(
        "fig3_timeseries",
        render_table(
            "Fig. 3: cherry-picked satellites (paper: drag spikes after "
            "storms; one satellite drops ~150 km over weeks)",
            ("satellite", "alt max km", "alt min km", "drop km", "B* median", "B* max"),
            rows,
        )
        + "\n\n"
        + chart,
    )

    # The chosen satellites must show the figure's qualitative features:
    # a clear drag excursion and a visible altitude response.
    drops = [float(r[3]) for r in rows]
    spikes = [float(r[5]) / float(r[4]) for r in rows]
    assert max(drops) > 20.0, "at least one satellite shows a deep decay"
    assert max(spikes) > 2.0, "at least one satellite shows a drag spike"

    # Ordering check: every association is strictly 'closely after'.
    for assoc in pipeline.result.associations:
        assert assoc.lag_hours >= 0.0
        assert (
            assoc.event.epoch.hours_since(assoc.episode.end)
            <= pipeline.config.association_window_hours
        )
