"""Fig. 9 — time series of the six orbital elements of the L1 batch.

The paper's appendix plots all six Keplerian elements of the 43
first-launch Starlink satellites: staging near ~360 km, the raise to
550 km / 53 deg, near-zero eccentricity, steadily regressing RAAN, and
consistent ARGP / mean anomaly once operational.
"""

import numpy as np

from repro import CosmicDance
from repro.core.report import render_table
from repro.simulation.constellation import (
    FIRST_LAUNCH,
    ConstellationConfig,
    ConstellationSimulator,
)
from repro.simulation.solarmodel import SolarActivityModel
from repro.simulation.tracking import TrackingConfig, TrackingSimulator
from repro.atmosphere import ThermosphereModel
from repro.time import Epoch
from repro.tle import SatelliteCatalog


def build_l1_batch():
    """Simulate the 43-satellite first launch over its first year."""
    end = FIRST_LAUNCH.add_days(365.0)
    solar = SolarActivityModel()
    dst = solar.generate(FIRST_LAUNCH, end, seed=11)
    config = ConstellationConfig(
        total_satellites=43,
        batch_size=43,
        first_launch=FIRST_LAUNCH,
        deorbit_fraction=0.0,
    )
    trajectories = ConstellationSimulator(config).run(
        ThermosphereModel(dst), end, seed=11
    )
    records = TrackingSimulator(
        TrackingConfig(mean_refresh_hours=24.0, gross_error_probability=0.0)
    ).observe_fleet(trajectories, seed=11)
    catalog = SatelliteCatalog()
    catalog.add_many(records)
    return catalog


def test_fig9_orbital_elements(benchmark, emit):
    catalog = benchmark.pedantic(build_l1_batch, rounds=1, iterations=1)
    assert len(catalog) == 43

    element_names = (
        "altitude", "eccentricity", "inclination", "raan", "argp", "mean_anomaly",
    )
    sample = catalog.get(catalog.catalog_numbers[0])
    rows = []
    for name in element_names:
        series = sample.element_series(name)
        early = float(np.median(series.values[:10]))
        late = float(np.median(series.values[-10:]))
        rows.append((name, f"{early:.4f}", f"{late:.4f}"))
    emit(
        "fig9_orbital_elements",
        render_table(
            "Fig. 9: orbital elements of one L1 satellite, early (staging) "
            "vs late (operational). Paper: 360->550 km raise; i~53 deg; "
            "e~0; RAAN regresses westward.",
            ("element", "early median", "late median"),
            rows,
        ),
    )

    operational = 0
    for history in catalog:
        altitudes = history.altitude_series()
        # Staging near 350 km for everyone (Fig. 9 panels).
        assert float(np.median(altitudes.values[:5])) < 400.0
        inclinations = history.inclination_series()
        assert abs(inclinations.median() - 53.0) < 0.3
        eccentricities = history.eccentricity_series()
        assert eccentricities.max() < 0.001, "circular orbits"
        raan = np.unwrap(np.radians(history.raan_series().values))
        assert raan[-1] < raan[0], "westward RAAN regression"
        # ~ -4.5 deg/day at 550 km / 53 deg inclination.
        days = (history.last_epoch.unix - history.first_epoch.unix) / 86400.0
        rate = np.degrees(raan[-1] - raan[0]) / days
        assert -6.0 < rate < -3.0
        if float(np.median(altitudes.values[-20:])) > 530.0:
            operational += 1
    # Storms can claim a few satellites from the dense staging orbit
    # (cf. the Feb 2022 incident), but the batch as a whole raises.
    assert operational >= 0.8 * len(catalog)
