"""Extension bench — dormant-Sun vs active-Sun fleet impact.

The paper stresses that today's constellations "were primarily built
during the dormancy of the Sun" and that high-intensity activity is
imminent.  This bench quantifies the contrast: the same fleet is run
through a dormant-Sun year and a solar-maximum year, and the measured
storm impacts are compared.
"""

import numpy as np

from repro import CosmicDance
from repro.core.report import render_table
from repro.simulation.constellation import ConstellationConfig, ConstellationSimulator
from repro.simulation.solarmodel import SolarActivityModel, StochasticStormRates
from repro.simulation.tracking import TrackingConfig, TrackingSimulator
from repro.atmosphere import ThermosphereModel
from repro.time import Epoch
from repro.tle import SatelliteCatalog


def run_year(*, mild_rate, moderate_rate, seed):
    """One year of a 40-satellite operational fleet under given rates."""
    start = Epoch.from_calendar(2023, 1, 1)
    end = Epoch.from_calendar(2024, 1, 1)
    solar = SolarActivityModel(
        rates=StochasticStormRates(
            mild_per_year=mild_rate, moderate_per_year=moderate_rate
        )
    )
    dst = solar.generate(start, end, seed=seed)
    config = ConstellationConfig(
        total_satellites=40,
        batch_size=40,
        first_launch=Epoch.from_calendar(2022, 6, 1),
        deorbit_fraction=0.0,
    )
    trajectories = ConstellationSimulator(config).run(
        ThermosphereModel(dst), end, seed=seed
    )
    records = TrackingSimulator(TrackingConfig(mean_refresh_hours=16.0)).observe_fleet(
        trajectories, seed=seed
    )
    catalog = SatelliteCatalog()
    catalog.add_many(records)

    pipeline = CosmicDance()
    pipeline.ingest.add_dst(dst)
    pipeline.ingest.add_elements(catalog.all_elements())
    result = pipeline.run()
    changes = [
        s.max_change_km
        for s in pipeline.altitude_changes([e.start for e in result.storm_episodes])
    ]
    return {
        "storm_hours": int((dst.series.values <= -50.0).sum()),
        "episodes": len(result.storm_episodes),
        "associations": len(result.associations),
        "decays": len(result.permanently_decayed),
        "p95_change": float(np.percentile(changes, 95)) if changes else 0.0,
    }


def compute_contrast():
    # Dormant Sun: sparse mild activity. Active Sun: cycle-maximum rates
    # (roughly 3x the paper window's, which sat on the rising phase).
    dormant = run_year(mild_rate=4.0, moderate_rate=0.3, seed=11)
    active = run_year(mild_rate=40.0, moderate_rate=5.0, seed=11)
    return dormant, active


def test_ext_solar_cycle_contrast(benchmark, emit):
    dormant, active = benchmark.pedantic(compute_contrast, rounds=1, iterations=1)

    emit(
        "ext_solar_cycle_contrast",
        render_table(
            "Extension: the same fleet under a dormant vs an active Sun "
            "(1-year windows)",
            ("metric", "dormant Sun", "active Sun"),
            [
                ("hours below -50 nT", dormant["storm_hours"], active["storm_hours"]),
                ("storm episodes", dormant["episodes"], active["episodes"]),
                ("associated trajectory events", dormant["associations"], active["associations"]),
                ("permanent decays", dormant["decays"], active["decays"]),
                ("p95 altitude change [km]", f"{dormant['p95_change']:.1f}",
                 f"{active['p95_change']:.1f}"),
            ],
        ),
    )

    # The active Sun must hit the fleet harder on every axis that the
    # paper's warning rests on.
    assert active["storm_hours"] > 3 * dormant["storm_hours"]
    assert active["associations"] > dormant["associations"]
    assert active["p95_change"] >= dormant["p95_change"]
