"""§5 prose claim — "we could only find changes in the atmospheric drag
and altitude ... We did not find any observable change in satellite
inclination due to solar storms."

This bench measures every element's storm response against its
quiet-epoch baseline: altitude and B* respond strongly; inclination
(and eccentricity) do not.
"""

import numpy as np

from repro.core.analysis import ELEMENT_GETTERS, element_response_samples
from repro.core.report import render_table


#: Response windows matched to each element's physical timescale: drag
#: reacts within hours-days, the altitude response builds over weeks.
#: Storm and quiet epochs use the same window per element, so the
#: ratios stay fair.
RESPONSE_WINDOW_DAYS = {
    "altitude": 12.0,
    "bstar": 2.0,
    "inclination": 12.0,
    "eccentricity": 12.0,
}


def compute_responses(pipeline):
    storm_events = [e.start for e in pipeline.result.storm_episodes]
    quiet_events = pipeline.quiet_epochs(count=12, seed=5)
    responses = {}
    for element, window_days in RESPONSE_WINDOW_DAYS.items():
        storm = element_response_samples(
            pipeline.result.cleaned, storm_events, element, window_days=window_days
        )
        quiet = element_response_samples(
            pipeline.result.cleaned, quiet_events, element, window_days=window_days
        )
        responses[element] = (
            float(np.median(storm)) if storm.size else float("nan"),
            float(np.median(quiet)) if quiet.size else float("nan"),
        )
    return responses


def test_text_element_response(benchmark, paper_run, emit):
    scenario, pipeline = paper_run
    responses = benchmark.pedantic(
        compute_responses, args=(pipeline,), rounds=1, iterations=1
    )

    rows = []
    ratios = {}
    for element, (storm, quiet) in responses.items():
        if quiet == 0.0:
            # 0/0 means the element simply never moves (no response).
            ratio = 1.0 if storm == 0.0 else float("inf")
        else:
            ratio = storm / quiet
        ratios[element] = ratio
        rows.append((element, f"{storm:.3e}", f"{quiet:.3e}", f"{ratio:.2f}x"))
    emit(
        "text_element_response",
        render_table(
            "§5 claim: median |element shift| after storms vs quiet epochs "
            "(paper: only drag and altitude respond; inclination does not)",
            ("element", "storm shift", "quiet shift", "ratio"),
            rows,
        ),
    )

    # Altitude and drag respond to storms...
    assert ratios["altitude"] > 1.5
    assert ratios["bstar"] > 1.5
    # ...while inclination and eccentricity show no observable change.
    assert ratios["inclination"] < 1.3
    assert ratios["eccentricity"] < 1.3
