"""Ablation A1 — the 5 km already-decaying threshold (§3).

The paper sets the threshold empirically at 5 km and notes it is
configurable.  This ablation sweeps it: too tight (2 km) and the
station-keeping sawtooth disqualifies healthy satellites; too loose
(20 km) and genuinely decaying satellites leak into post-event
analyses, inflating the measured changes.
"""

import numpy as np

from repro.core.analysis import altitude_change_samples
from repro.core.config import CosmicDanceConfig
from repro.core.report import render_table


def sweep_thresholds(pipeline, events, thresholds):
    """Aggregate eligibility and measured changes across all events."""
    outcomes = []
    for threshold in thresholds:
        config = CosmicDanceConfig(already_decaying_threshold_km=threshold)
        samples = altitude_change_samples(
            pipeline.result.cleaned, events, config=config
        )
        changes = np.array([s.max_change_km for s in samples])
        outcomes.append(
            (
                threshold,
                len(samples),
                float(np.percentile(changes, 99)) if changes.size else float("nan"),
                float(changes.max()) if changes.size else float("nan"),
            )
        )
    return outcomes


def test_ablation_decay_threshold(benchmark, paper_run, emit):
    scenario, pipeline = paper_run
    events = [e.start for e in pipeline.result.storm_episodes]

    thresholds = (2.0, 5.0, 10.0, 20.0)
    outcomes = benchmark.pedantic(
        sweep_thresholds, args=(pipeline, events, thresholds), rounds=1, iterations=1
    )

    emit(
        "ablation_decay_threshold",
        render_table(
            f"Ablation A1: already-decaying threshold, aggregated over "
            f"{len(events)} storm events (paper uses 5 km)",
            ("threshold km", "samples", "p99 change km", "max change km"),
            [
                (t, n, f"{p99:.2f}", f"{mx:.2f}")
                for t, n, p99, mx in outcomes
            ],
        ),
    )

    by_threshold = {t: (n, p99, mx) for t, n, p99, mx in outcomes}
    # Loosening the threshold is monotone: more samples qualify...
    sample_counts = [by_threshold[t][0] for t in thresholds]
    assert sample_counts == sorted(sample_counts)
    # ...and at 20 km, already-decaying satellites leak in, inflating
    # the measured tail relative to the paper's 5 km.
    assert by_threshold[20.0][0] > by_threshold[2.0][0]
    assert by_threshold[5.0][1] <= by_threshold[20.0][1] + 1e-9
