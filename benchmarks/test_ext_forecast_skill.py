"""Extension bench — Dst nowcast skill over the paper window.

Scores the exponential-recovery forecaster against persistence at every
storm onset in the paper window.  The recovery model should win during
storm recoveries — the regime where trigger-driven measurements (and
satellite operators) actually need a forecast.
"""

import numpy as np

from repro.core.report import render_table
from repro.spaceweather.forecast import (
    forecast_mae,
    persistence_forecast,
    recovery_forecast,
)


def score_forecasts(pipeline):
    dst = pipeline.result.dst
    rows = []
    for episode in pipeline.result.storm_episodes:
        # Forecast from just after the episode peak.
        origin = episode.start.add_hours(episode.duration_hours + 0.5)
        try:
            model = forecast_mae(recovery_forecast(dst, origin), dst)
            flat = forecast_mae(persistence_forecast(dst, origin), dst)
        except Exception:  # noqa: BLE001 - origin may fall off the record
            continue
        if np.isfinite(model) and np.isfinite(flat):
            rows.append((episode.peak_nt, model, flat))
    return rows


def test_ext_forecast_skill(benchmark, paper_run, emit):
    scenario, pipeline = paper_run
    rows = benchmark.pedantic(score_forecasts, args=(pipeline,), rounds=1, iterations=1)
    assert rows, "the window must contain scoreable storm recoveries"

    model_maes = np.array([r[1] for r in rows])
    flat_maes = np.array([r[2] for r in rows])
    wins = float(np.mean(model_maes < flat_maes))

    emit(
        "ext_forecast_skill",
        render_table(
            f"Extension: 24 h Dst nowcast skill over {len(rows)} storm "
            f"recoveries (recovery model beats persistence on "
            f"{wins:.0%} of events)",
            ("metric", "recovery model", "persistence"),
            [
                ("median MAE [nT]", f"{np.median(model_maes):.1f}",
                 f"{np.median(flat_maes):.1f}"),
                ("mean MAE [nT]", f"{model_maes.mean():.1f}",
                 f"{flat_maes.mean():.1f}"),
            ],
        ),
    )

    assert np.median(model_maes) < np.median(flat_maes)
    assert wins > 0.6
