"""Fig. 1 — distribution of geomagnetic storm intensities, Jan'20-May'24.

Paper's observations this bench reproduces in shape:
* the 95th-ptile intensity is weaker than a minor storm (> -50 nT),
* the 99th-ptile sits near -63 nT,
* mild storms total ~720 hours, moderate ~74 hours, severe exactly 3
  hours (~-210 nT), extreme none.
"""

from repro.core.figures import fig1_intensity_distribution
from repro.core.report import render_table
from repro.spaceweather import StormLevel


def test_fig1_intensity_distribution(benchmark, paper_run, emit):
    scenario, pipeline = paper_run
    dst = scenario.dst.slice(scenario.start.add_days(61), None)  # Jan'20 on

    distribution = benchmark.pedantic(
        fig1_intensity_distribution, args=(dst,), rounds=3, iterations=1
    )
    counts = distribution.band_hours
    percentiles = distribution.percentiles

    rows = [
        (f"{q}th-ptile intensity", f"{value:.1f} nT")
        for q, value in percentiles.items()
    ]
    rows += [
        (f"hours at {level.name.lower()}", counts[level])
        for level in StormLevel
        if level is not StormLevel.QUIET
    ]
    emit(
        "fig1_intensity_distribution",
        render_table(
            "Fig. 1: storm intensity distribution (paper: 99th-ptile -63 nT; "
            "mild 720 h, moderate 74 h, severe 3 h)",
            ("metric", "value"),
            rows,
        ),
    )

    # Shape assertions against the paper's headline numbers.
    assert percentiles[95] > -50.0, "95th-ptile must be weaker than minor storms"
    assert -85.0 < percentiles[99] < -50.0, "99th-ptile near the paper's -63 nT"
    assert counts[StormLevel.MINOR] > counts[StormLevel.MODERATE] > counts[StormLevel.SEVERE]
    assert counts[StormLevel.EXTREME] == 0
    assert 1 <= counts[StormLevel.SEVERE] <= 6
