"""Extension bench — orbital lifetime vs altitude and storm conditions.

Quantifies the background facts the paper's narrative rests on: an
uncontrolled satellite at the ~350 km staging orbit decays within
weeks (the Feb 2022 loss), the 550 km shell takes an order of magnitude
longer, and storm-level densities compress every lifetime.
"""

from repro.atmosphere.lifetime import lifetime_table
from repro.core.report import render_table

ALTITUDES = [300.0, 350.0, 400.0, 450.0, 500.0, 550.0]


def compute_lifetimes():
    quiet = lifetime_table(ALTITUDES, max_days=20 * 365.25)
    stormy = lifetime_table(ALTITUDES, density_multiplier=5.0, max_days=20 * 365.25)
    return quiet, stormy


def test_ext_lifetime(benchmark, emit):
    quiet, stormy = benchmark.pedantic(compute_lifetimes, rounds=1, iterations=1)

    emit(
        "ext_lifetime",
        render_table(
            "Extension: uncontrolled orbital lifetime (quiet vs 5x storm "
            "density; paper: staging satellites were lost within weeks)",
            ("altitude km", "quiet days", "storm days"),
            [
                (f"{alt:.0f}", f"{q.days:.0f}", f"{s.days:.0f}")
                for alt, q, s in zip(ALTITUDES, quiet, stormy)
            ],
        ),
    )

    by_alt = dict(zip(ALTITUDES, quiet))
    # The staging orbit is weeks from re-entry once uncontrolled...
    assert by_alt[350.0].days < 60.0
    # ...while the operational shell is an order of magnitude safer.
    assert by_alt[550.0].days > 10 * by_alt[350.0].days
    # Storm densities compress lifetimes roughly proportionally.
    for q, s in zip(quiet, stormy):
        assert s.days < q.days / 3.0
