"""Extension bench — shell trespass / conjunction pressure (paper §6).

The paper observes 10s-of-km post-storm shifts "often trespassing
neighboring shells of satellites" and leaves the Kessler-risk
quantification to future work.  This bench runs that quantification on
the paper-window scenario: storm-displaced and decaying satellites
accumulate measurable residence time inside foreign shells.
"""

from repro.core.conjunction import conjunction_report
from repro.core.report import render_table


def test_ext_conjunction(benchmark, paper_run, emit):
    scenario, pipeline = paper_run
    report = benchmark.pedantic(
        conjunction_report, args=(pipeline.result.cleaned,), rounds=1, iterations=1
    )

    by_shell: dict[str, float] = {}
    for event in report.events:
        by_shell[event.shell.name] = (
            by_shell.get(event.shell.name, 0.0) + event.duration_hours
        )
    emit(
        "ext_conjunction",
        render_table(
            "Extension: shell-trespass exposure over the paper window",
            ("metric", "value"),
            [
                ("trespass events", len(report.events)),
                ("satellites involved", report.satellites_involved),
                ("trespass satellite-hours", f"{report.trespass_hours:.0f}"),
                ("conjunction pressure", f"{report.conjunction_pressure:.2e}"),
            ]
            + [
                (f"hours inside {name}", f"{hours:.0f}")
                for name, hours in sorted(by_shell.items())
            ],
        ),
    )

    # Storm-driven decays guarantee some trespass exposure in 4+ years.
    assert report.trespass_hours > 0
    assert report.satellites_involved >= 1
    # Pressure is duration x shell density, so it dominates raw hours.
    assert report.conjunction_pressure > report.trespass_hours
