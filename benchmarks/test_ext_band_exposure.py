"""Extension bench — latitude-band storm exposure (paper §6).

The paper notes higher latitudes are more storm-prone and calls for a
latitude-band-wise study.  This bench samples fleet positions with the
SGP4 substrate across the strongest storm's hours and attributes them
to latitude bands.
"""

from repro.core.geography import storm_band_exposure
from repro.core.report import render_table


def test_ext_band_exposure(benchmark, paper_run, emit):
    scenario, pipeline = paper_run
    # The deepest storm of the window keeps the propagation bill small.
    deepest = min(pipeline.result.storm_episodes, key=lambda e: e.peak_nt)

    exposure = benchmark.pedantic(
        storm_band_exposure,
        args=(pipeline.result.cleaned, [deepest]),
        kwargs={"step_minutes": 30.0, "max_satellites": 12},
        rounds=1,
        iterations=1,
    )

    emit(
        "ext_band_exposure",
        render_table(
            f"Extension: latitude-band exposure during the "
            f"{deepest.start.isoformat()[:10]} storm ({deepest.peak_nt:.0f} nT, "
            f"{deepest.duration_hours} h, 12 satellites sampled)",
            ("band", "satellite-hours", "fraction"),
            [
                (label, f"{hours:.1f}", f"{frac:.2%}")
                for label, hours, frac in zip(
                    exposure.band_labels(),
                    exposure.satellite_hours,
                    exposure.fractions(),
                )
            ],
        ),
    )

    assert exposure.total_hours > 0
    # A 53-degree-inclination fleet sweeps every band; the high band
    # (50-90 deg) collects a substantial share because orbital dwell
    # time peaks near the inclination limit.
    fractions = exposure.fractions()
    assert all(f > 0 for f in fractions)
    assert fractions[-1] > 0.15
