"""Analysis-service coalescing benchmark.

Measures what refresh coalescing buys a busy service: N clients asking
for the same dirty session concurrently must cost ONE recompute (the
other N-1 futures wait on it), versus N recomputes when each request
arrives alone against a cold memo.  The exactly-one-recompute contract
is asserted here and the measurements land in ``BENCH_serve.json`` at
the repository root.
"""

from __future__ import annotations

import io
import json
import os
import pathlib
import time

from repro import analyze
from repro.exec import result_digest
from repro.io.csvio import write_dst_csv
from repro.serve.service import AnalysisService
from repro.simulation import paper_scenario
from repro.tle.format import format_tle_block

BENCH_PATH = pathlib.Path(__file__).parent.parent / "BENCH_serve.json"

SATELLITES = 48
WAITERS = 8


def test_serve_coalesce(emit):
    scenario = paper_scenario(total_satellites=SATELLITES, seed=0)
    buf = io.StringIO()
    write_dst_csv(scenario.dst, buf)
    dst_text = buf.getvalue()
    tle_text = format_tle_block(list(scenario.catalog.all_elements()))

    svc = AnalysisService()
    svc.start()
    try:
        ok = svc.call(
            svc.request("ingest-delta", dst_text=dst_text, tle_text=tle_text)
        )
        assert ok.ok, ok.error

        # --- N concurrent refreshes: one recompute, N waiters --------
        started = time.perf_counter()
        futures = [
            svc.submit(svc.request("refresh")) for _ in range(WAITERS)
        ]
        responses = [f.result(timeout=600) for f in futures]
        coalesced_s = time.perf_counter() - started
        assert all(r.ok for r in responses), [r.error for r in responses]
        digests = {r.result["result_digest"] for r in responses}
        assert len(digests) == 1
        session = svc.sessions.peek("default")
        coalesced_recomputes = session.refreshes
        assert coalesced_recomputes == 1  # the acceptance contract

        # The one result is the batch result, byte for byte.
        digest = digests.pop()
        assert digest == result_digest(analyze(dst_text, tle_text))

        # --- N serial refreshes, cold memo each time: N recomputes ---
        started = time.perf_counter()
        for _ in range(WAITERS):
            svc.memo.clear()
            response = svc.call(svc.request("refresh"), timeout=600)
            assert response.ok, response.error
            assert response.result["result_digest"] == digest
        serial_s = time.perf_counter() - started
        serial_recomputes = session.refreshes - coalesced_recomputes
        assert serial_recomputes == WAITERS
    finally:
        svc.shutdown()

    speedup = serial_s / coalesced_s if coalesced_s > 0 else float("inf")
    payload = {
        "cpu_count": os.cpu_count(),
        "satellites": SATELLITES,
        "concurrent_waiters": WAITERS,
        "coalesced_wall_s": round(coalesced_s, 4),
        "coalesced_recomputes": coalesced_recomputes,
        "coalesced_absorbed": WAITERS - coalesced_recomputes,
        "serial_wall_s": round(serial_s, 4),
        "serial_recomputes": serial_recomputes,
        "speedup": round(speedup, 2),
        "digest_matches_batch": True,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    emit(
        "serve_coalesce",
        "\n".join(
            [
                f"{WAITERS} refresh requests over {SATELLITES} satellites:",
                f"  concurrent (coalesced) {coalesced_s:8.3f} s   "
                f"({coalesced_recomputes} recompute, "
                f"{WAITERS - coalesced_recomputes} absorbed)",
                f"  serial (cold memo)     {serial_s:8.3f} s   "
                f"({serial_recomputes} recomputes)",
                f"  speedup                {speedup:8.2f} x",
            ]
        ),
    )
