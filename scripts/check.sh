#!/usr/bin/env bash
# Pre-PR gate: byte-compile everything, run the tier-1 suite (with any
# DeprecationWarning raised from repro's own code escalated to an
# error), the robustness suite, the streaming suite, the chaos
# (fault-injection) suite, a 2-worker parallel end-to-end smoke run,
# and the batch-vs-replay parity gate.  All of it must pass before a
# change ships (see README.md, "Tests").
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== compileall =="
python -m compileall -q src

echo "== tier-1 suite (repro DeprecationWarnings are errors) =="
python -m pytest -x -q -W "error::DeprecationWarning:repro"

echo "== robustness suite =="
python -m pytest -x -q tests/robustness

echo "== streaming suite =="
python -m pytest -x -q tests/stream

echo "== chaos suite =="
python -m pytest -x -q -m chaos tests/robustness

echo "== coverage gate =="
# pytest-cov is optional (the container may not ship it); when present,
# hold line coverage of the repro package at or above the floor.
if python -c "import pytest_cov" 2>/dev/null; then
  python -m pytest -x -q --cov=repro --cov-fail-under=85
else
  echo "pytest-cov not installed; skipping coverage gate"
fi

echo "== parallel smoke run (2 workers) =="
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
python -m repro.cli simulate --scenario quickstart --out "$SMOKE_DIR" >/dev/null
python -m repro.cli analyze --cache "$SMOKE_DIR" --workers 2 >/dev/null
# Second invocation must start warm from the persisted stage cache.
python -m repro.cli analyze --cache "$SMOKE_DIR" --workers 2 \
  | grep -q "0 miss(es)" \
  || { echo "parallel smoke run: stage cache did not warm" >&2; exit 1; }

echo "== batch-vs-replay parity gate =="
# Streaming the same dataset chunk-by-chunk must land on the exact
# batch result digest (see docs/STREAMING.md).
python -m repro.cli replay --cache "$SMOKE_DIR" --chunk-hours 168 \
  --run-every 10 --verify-parity \
  | grep -q "parity OK" \
  || { echo "replay digest diverged from the batch run" >&2; exit 1; }

echo "== analysis-service smoke (stdio) =="
# Drive the long-lived service over its JSON-lines stdio front end
# with the same dataset: the warm refresh digest must be byte-
# identical to the one-shot batch digest (see docs/API.md).
BATCH_DIGEST="$(python -m repro.cli analyze --cache "$SMOKE_DIR" --json \
  | python -c "import json,sys; print(json.load(sys.stdin)['result_digest'])")"
SERVE_DIGEST="$(
  python - "$SMOKE_DIR" <<'PYEOF' | python -m repro.cli serve 2>/dev/null | python -c '
import json, sys
for line in sys.stdin:
    response = json.loads(line)
    if not response["ok"]:
        sys.exit("service error: %s" % response["error"])
    if response["op"] == "refresh":
        print(response["result"]["result_digest"])
'
import json, pathlib, sys
root = pathlib.Path(sys.argv[1])
dst = (root / "dst.csv").read_text()
tle = "".join(p.read_text() for p in sorted((root / "tles").glob("*.tle")))
print(json.dumps({"op": "ingest-delta", "payload": {"dst_text": dst, "tle_text": tle}}))
print(json.dumps({"op": "refresh"}))
print(json.dumps({"op": "shutdown"}))
PYEOF
)"
[ -n "$SERVE_DIGEST" ] && [ "$SERVE_DIGEST" = "$BATCH_DIGEST" ] \
  || { echo "service refresh digest diverged from the batch run" >&2; exit 1; }

echo "All checks passed."
