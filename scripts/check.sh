#!/usr/bin/env bash
# Pre-PR gate: byte-compile everything, run the tier-1 suite, then run
# the chaos (fault-injection) suite on its own.  All three must pass
# before a change ships (see README.md, "Tests").
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== compileall =="
python -m compileall -q src

echo "== tier-1 suite =="
python -m pytest -x -q

echo "== chaos suite =="
python -m pytest -x -q -m chaos tests/robustness

echo "All checks passed."
